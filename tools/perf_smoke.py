"""Performance smoke check for the functional join layer.

Times the experiments that stress the batched kernels hardest — fig13
(the headline scaling sweep: every operator at five sizes) and fig17
(partitioning algorithms in the full join) at the fixed smoke divisor,
plus fig17 again at :data:`DENSE_PROBE_DIVISOR` (larger arrays, so the
grouped probes take the dense per-``(group, bucket)`` offsets path
instead of binary search — the radix-window fanout is planned from the
*nominal* size, so only lowering the divisor grows the build side
relative to the slot space) — and fig16 (CPU vs. GPU vs. co-processing,
which exercises the split-search costing loop). Each experiment is
timed :data:`SMOKE_REPEATS` times (run cache cleared before every
repeat so each is cold) and the **median** is reported, with the
max-min spread recorded per experiment — single-run timings showed
~0.97x phantom "regressions" (fig17@4096) that were pure scheduler
noise, so the gates below act on the median signal, not one sample.
Writes the timings to ``BENCH_kernels.json`` in the repo root, with
per-experiment speedups against the previously committed report, and
**appends** a timestamped entry to ``BENCH_history.json`` — the perf
trajectory ``tools/bench_diff.py --history`` reads (the latest report
alone only ever shows one hop; the history shows the trend). CI runs
this to catch functional-layer performance regressions::

    PYTHONPATH=src python tools/perf_smoke.py
    PYTHONPATH=src python tools/perf_smoke.py --fail-over 60 --fail-regression 2

``--fail-over SECONDS`` exits non-zero when the total exceeds the
budget; ``--fail-regression FACTOR`` exits non-zero when the total over
experiments shared with the previous report regresses by more than
FACTOR — together they turn the smoke into a hard gate.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import telemetry  # noqa: E402
from repro.bench.experiments import ALL_EXPERIMENTS  # noqa: E402
from repro.join import run_cache  # noqa: E402
from repro.telemetry.histogram import Histogram  # noqa: E402

#: Counter namespaces worth recording per experiment: cache behaviour
#: and which kernel paths actually ran (a silent scipy-less fallback or
#: a dense-vs-searchsorted flip shows up here before it shows up as a
#: wall-clock anomaly). ``exec.`` covers the out-of-core layer (spill
#: bytes, morsels, steals, worker deaths).
METRIC_PREFIXES = (
    "run_cache.",
    "kernels.scatter.",
    "batch.probe.",
    "exec.",
)

#: Gauge namespaces recorded per experiment: the out-of-core gates
#: (``exec.pool.speedup``, ``exec.outofcore.checksum_ok``) that
#: ``tools/bench_diff.py --check-outofcore`` reads, plus process
#: memory (``process.peak_rss_bytes`` is the monotonic high-water
#: mark, so a later label's value is "peak so far", not per-label).
GAUGE_PREFIXES = ("exec.", "process.")

#: Timing histograms whose p50/p90/p99 the report records per label
#: (``repro.telemetry.histogram`` estimates, accurate to one log
#: bucket) — the latency-shape complement to the median wall-clock.
PERCENTILE_TIMINGS = (
    "bench.experiment_seconds",
    "join.run_seconds",
    "exec.morsel_seconds",
)

#: Scale divisor at which fig17's grouped probes use the dense offsets
#: table (the build side outgrows the planned slot space).
DENSE_PROBE_DIVISOR = 4096.0

#: The timed runs: experiment name + divisor override (None = the
#: --divisor flag). The override's entry is keyed "name@divisor".
SMOKE_RUNS = (
    ("fig13", None),
    ("fig16", None),
    ("fig17", None),
    ("fig17", DENSE_PROBE_DIVISOR),
    # fig13-scale arrays (500 K rows/side): large enough that the
    # morsel pool's IPC amortizes, which is what its speedup gate
    # measures.
    ("ext_outofcore", DENSE_PROBE_DIVISOR),
)
DEFAULT_DIVISOR = 16384.0

#: Timed repeats per experiment; the report carries the median. Three
#: is the fewest that gives a noise-robust median while keeping the
#: smoke within its CI budget.
SMOKE_REPEATS = 3
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_kernels.json"
DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.json"

#: History entries kept (oldest dropped first); bounds the committed
#: file while keeping enough trajectory for trend plots.
HISTORY_LIMIT = 200


def _metric_counters(delta: dict) -> dict:
    """The delta's counters filtered to :data:`METRIC_PREFIXES`."""
    return {
        name: count
        for name, count in sorted(delta.get("counters", {}).items())
        if name.startswith(METRIC_PREFIXES)
    }


def _metric_gauges(delta: dict) -> dict:
    """The delta's gauges filtered to :data:`GAUGE_PREFIXES`."""
    return {
        name: value
        for name, value in sorted(delta.get("gauges", {}).items())
        if name.startswith(GAUGE_PREFIXES)
    }


def _timing_percentiles(delta: dict) -> dict:
    """p50/p90/p99 per :data:`PERCENTILE_TIMINGS` timing in the delta."""
    out = {}
    for name in PERCENTILE_TIMINGS:
        timing = delta.get("timings", {}).get(name)
        if not timing or not timing.get("count"):
            continue
        histogram = Histogram.from_timing(timing)
        out[name] = {
            quantile: round(value, 6)
            for quantile, value in histogram.percentiles().items()
        }
    return out


def _median(samples):
    """The middle sample (mean of the middle two for even counts)."""
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def run_smoke(
    divisor: float,
    use_cache: bool = True,
    runs=SMOKE_RUNS,
    repeats: int = SMOKE_REPEATS,
) -> dict:
    """Time the smoke experiments; returns the report dict.

    Each experiment runs ``repeats`` times with the run cache cleared
    before every repeat (so every sample is cold and comparable);
    ``experiments`` carries the per-experiment **median** and
    ``spread`` the max-min across the samples (also recorded in full
    under ``samples``). Counters are captured on the first repeat only
    — repeats are identical, so accumulating them would just multiply
    every count by ``repeats``.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if use_cache:
        run_cache.enable()
    run_cache.clear()
    timings = {}
    spreads = {}
    samples = {}
    metrics = {}
    gauges = {}
    percentiles = {}
    try:
        for name, override in runs:
            run_divisor = divisor if override is None else override
            label = name if override is None else f"{name}@{override:g}"
            times = []
            for repeat in range(repeats):
                run_cache.clear()
                before = telemetry.registry.snapshot()
                started = time.time()
                ALL_EXPERIMENTS[name].run(scale_divisor=run_divisor)
                times.append(round(time.time() - started, 3))
                if repeat == 0:
                    telemetry.update_process_gauges()
                    delta = telemetry.registry.delta_since(before)
                    metrics[label] = _metric_counters(delta)
                    gauges[label] = _metric_gauges(delta)
                    quantiles = _timing_percentiles(delta)
                    if quantiles:
                        percentiles[label] = quantiles
            timings[label] = round(_median(times), 3)
            spreads[label] = round(max(times) - min(times), 3)
            samples[label] = times
    finally:
        cache_stats = dict(run_cache.stats)
        run_cache.disable()
        run_cache.clear()
        from repro.exec import shutdown_pool

        shutdown_pool()
    return {
        "divisor": divisor,
        "python": platform.python_version(),
        "repeats": repeats,
        "experiments": timings,
        "spread": spreads,
        "samples": samples,
        "total_seconds": round(sum(timings.values()), 3),
        "run_cache": cache_stats,
        "metrics": metrics,
        "gauges": gauges,
        "percentiles": percentiles,
        "memory": {
            label: {
                name: values[name]
                for name in (
                    "process.peak_rss_bytes",
                    "process.children_peak_rss_bytes",
                    "exec.spill.tempdir_bytes",
                )
                if name in values
            }
            for label, values in gauges.items()
        },
    }


def append_history(
    path: pathlib.Path, report: dict, limit: int = HISTORY_LIMIT
) -> dict:
    """Append a timestamped entry to the trajectory file at ``path``.

    Unlike the report file (overwritten every run), the history
    accumulates: ``{"entries": [{"timestamp": ..., "experiments": ...,
    "total_seconds": ...}, ...]}``, oldest first, capped at ``limit``.
    A corrupt or missing file restarts the trajectory rather than
    failing the smoke.
    """
    try:
        document = json.loads(path.read_text())
        entries = document.get("entries")
        if not isinstance(entries, list):
            entries = []
    except (OSError, ValueError):
        entries = []
    entries.append(
        {
            "timestamp": datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds")
            .replace("+00:00", "Z"),
            "divisor": report["divisor"],
            "python": report["python"],
            "experiments": dict(report["experiments"]),
            "spread": dict(report.get("spread", {})),
            "total_seconds": report["total_seconds"],
            "memory": dict(report.get("memory", {})),
        }
    )
    document = {"entries": entries[-limit:]}
    path.write_text(json.dumps(document, indent=2) + "\n")
    return document


def load_previous(path: pathlib.Path) -> dict:
    """The previously committed report's experiment timings ({} if none)."""
    try:
        previous = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    experiments = previous.get("experiments")
    return experiments if isinstance(experiments, dict) else {}


def add_speedups(report: dict, previous: dict) -> None:
    """Annotate the report with per-experiment speedup vs the previous run."""
    speedups = {
        name: round(previous[name] / seconds, 2)
        for name, seconds in report["experiments"].items()
        if name in previous and seconds > 0 and previous[name] > 0
    }
    if speedups:
        report["speedup_vs_previous"] = speedups


def regression_factor(report: dict, previous: dict) -> float:
    """New/old total over the experiments both reports timed (0 if none)."""
    shared = [name for name in report["experiments"] if name in previous]
    if not shared:
        return 0.0
    old_total = sum(previous[name] for name in shared)
    if old_total <= 0:
        return 0.0
    return sum(report["experiments"][name] for name in shared) / old_total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--divisor",
        type=float,
        default=DEFAULT_DIVISOR,
        help=f"scale divisor for the runs (default {DEFAULT_DIVISOR:g})",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--fail-over",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit 1 when the total exceeds this budget",
    )
    parser.add_argument(
        "--fail-regression",
        type=float,
        default=None,
        metavar="FACTOR",
        help="exit 1 when the total over experiments shared with the "
        "previous report grows by more than FACTOR",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=SMOKE_REPEATS,
        metavar="N",
        help="timed repeats per experiment; the report carries the "
        f"median and the max-min spread (default {SMOKE_REPEATS})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable run memoization during the smoke",
    )
    parser.add_argument(
        "--experiments",
        default=None,
        metavar="NAMES",
        help="comma-separated subset of the smoke labels to run "
        "(e.g. 'fig13' or 'fig17,fig17@4096')",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="compare against this report instead of --output (so a "
        "gate can read the committed baseline without clobbering it)",
    )
    parser.add_argument(
        "--history",
        type=pathlib.Path,
        default=DEFAULT_HISTORY,
        metavar="PATH",
        help="perf trajectory file to append a timestamped entry to "
        f"(default {DEFAULT_HISTORY.name}; see tools/bench_diff.py)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending to the trajectory file",
    )
    args = parser.parse_args(argv)

    runs = SMOKE_RUNS
    if args.experiments:
        wanted = {label.strip() for label in args.experiments.split(",")}
        labels = {
            (name, override): name if override is None else f"{name}@{override:g}"
            for name, override in SMOKE_RUNS
        }
        runs = tuple(run for run, label in labels.items() if label in wanted)
        unknown = wanted - set(labels.values())
        if unknown:
            parser.error(
                f"unknown smoke experiments: {sorted(unknown)}; "
                f"choose from {sorted(labels.values())}"
            )

    previous = load_previous(args.baseline or args.output)
    report = run_smoke(
        args.divisor,
        use_cache=not args.no_cache,
        runs=runs,
        repeats=args.repeats,
    )
    add_speedups(report, previous)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    if not args.no_history:
        append_history(args.history, report)
    print(json.dumps(report, indent=2))
    failed = False
    if args.fail_over is not None and report["total_seconds"] > args.fail_over:
        print(
            f"perf smoke FAILED: {report['total_seconds']:.1f}s "
            f"> budget {args.fail_over:.1f}s",
            file=sys.stderr,
        )
        failed = True
    if args.fail_regression is not None:
        factor = regression_factor(report, previous)
        if factor > args.fail_regression:
            print(
                f"perf smoke FAILED: {factor:.2f}x the previous report's "
                f"total (> {args.fail_regression:g}x allowed)",
                file=sys.stderr,
            )
            failed = True
        elif factor == 0.0:
            print(
                "perf smoke: no comparable previous report; "
                "regression check skipped",
                file=sys.stderr,
            )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
