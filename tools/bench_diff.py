"""Diff two benchmark artifacts and name what moved.

Four input shapes, auto-detected:

- **explain documents** (``python -m repro.bench ... --explain out.json``,
  ``{"experiments": {name: [explained run, ...]}}``) — runs are matched
  by label within each experiment and diffed with
  :func:`repro.explain.diff_runs`, so the output names the slowed tasks
  *and their bounding resource*, not just the totals;
- **perf-smoke reports** (``BENCH_kernels.json``) — per-experiment
  wall-clock deltas;
- **flight-recorder event logs** (``python -m repro.bench ... --events
  out.jsonl``, one JSON event per line) — per-event-type count deltas
  plus p50/p90/p99 deltas over each type's ``seconds`` field;
- **the perf trajectory** (``--history``: ``BENCH_history.json``
  appended by ``tools/perf_smoke.py``) — diffs the last two entries.

``--check-invariants`` instead audits one explain document against the
attribution invariants (:meth:`repro.explain.ExplainedRun.verify`:
utilization in [0, 1], bound attribution and critical path summing to
the makespan) and exits non-zero on any violation — the CI gate.

Usage::

    PYTHONPATH=src python tools/bench_diff.py old.json new.json
    PYTHONPATH=src python tools/bench_diff.py old.jsonl new.jsonl
    PYTHONPATH=src python tools/bench_diff.py --history
    PYTHONPATH=src python tools/bench_diff.py --check-invariants run.json
    PYTHONPATH=src python tools/bench_diff.py --check-outofcore BENCH_kernels.json
    PYTHONPATH=src python tools/bench_diff.py --check-events events.jsonl
    PYTHONPATH=src python tools/bench_diff.py --check-service report.json
    PYTHONPATH=src python tools/bench_diff.py --check-slo report.json
    PYTHONPATH=src python tools/bench_diff.py --check-trace trace.json
    PYTHONPATH=src python tools/bench_diff.py a.json b.json --fail-regression 1.5

``--check-outofcore`` audits a perf-smoke report's out-of-core gauges
(checksum identity with the in-memory join, morsel-pool speedup) — the
CI gate for the out-of-core execution layer. ``--check-events``
validates an event log against the flight-recorder schema
(:func:`repro.telemetry.events.validate_events`) — the CI gate for the
observability layer. ``--check-service`` audits a ``tools/load_gen.py``
report against the committed ``BENCH_service.json`` baseline (zero
incorrect results; digest, rejected tally, and event counts
byte-identical) — the CI gate for the concurrent join service.
``--check-slo`` audits a report's SLO section (every objective within
its error budget, deterministic error tallies equal to the baseline's,
no perf-history anomalies) and ``--check-trace`` audits a Chrome trace
file's span forest (valid ids, acyclic, no orphan parents) — the CI
gates for the tracing + SLO layer.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import explain  # noqa: E402
from repro.telemetry import events as events_mod  # noqa: E402
from repro.telemetry.histogram import Histogram  # noqa: E402

DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.json"


def _is_event_log(path: pathlib.Path) -> bool:
    return path.suffix == ".jsonl"


def _load_events(path: pathlib.Path) -> List[dict]:
    try:
        return events_mod.read_jsonl(path)
    except OSError as exc:
        raise SystemExit(f"bench_diff: cannot read {path}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"bench_diff: {exc}")


def _load(path: pathlib.Path) -> dict:
    try:
        document = json.loads(path.read_text())
    except OSError as exc:
        raise SystemExit(f"bench_diff: cannot read {path}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"bench_diff: {path} is not JSON: {exc}")
    if not isinstance(document, dict):
        raise SystemExit(f"bench_diff: {path} is not a JSON object")
    return document


def _kind(document: dict) -> str:
    """'explain', 'smoke', or 'history', from the document's shape."""
    if isinstance(document.get("entries"), list):
        return "history"
    experiments = document.get("experiments")
    if isinstance(experiments, dict) and experiments:
        value = next(iter(experiments.values()))
        return "explain" if isinstance(value, list) else "smoke"
    return "explain" if "experiments" in document else "smoke"


# -- smoke-report timing diffs --------------------------------------------------


def diff_smoke(a: dict, b: dict, label_a: str, label_b: str) -> List[str]:
    """Per-experiment wall-clock deltas between two smoke reports."""
    times_a = a.get("experiments") or {}
    times_b = b.get("experiments") or {}
    lines = [f"smoke diff: {label_a}  ->  {label_b}"]
    shared = sorted(set(times_a) & set(times_b))
    if not shared:
        lines.append("  (no shared experiments)")
        return lines
    movers: List[Tuple[float, str]] = []
    for name in shared:
        old, new = times_a[name], times_b[name]
        delta = new - old
        movers.append((delta, name))
        sign = "+" if delta >= 0 else "-"
        factor = f" ({new / old:.2f}x)" if old > 0 else ""
        lines.append(
            f"  {name:>16} {old:8.3f}s -> {new:8.3f}s  "
            f"{sign}{abs(delta):.3f}s{factor}"
        )
    old_total = sum(times_a[name] for name in shared)
    new_total = sum(times_b[name] for name in shared)
    delta = new_total - old_total
    sign = "+" if delta >= 0 else "-"
    lines.append(
        f"  {'total':>16} {old_total:8.3f}s -> {new_total:8.3f}s  "
        f"{sign}{abs(delta):.3f}s"
    )
    worst = max(movers)
    if worst[0] > 0:
        lines.append(
            f"  biggest regression: {worst[1]} (+{worst[0]:.3f}s)"
        )
    only_a = sorted(set(times_a) - set(times_b))
    only_b = sorted(set(times_b) - set(times_a))
    if only_a:
        lines.append(f"  only in {label_a}: {', '.join(only_a)}")
    if only_b:
        lines.append(f"  only in {label_b}: {', '.join(only_b)}")
    return lines


def _smoke_factor(a: dict, b: dict) -> float:
    """New/old total over shared experiments (0 when not comparable)."""
    times_a = a.get("experiments") or {}
    times_b = b.get("experiments") or {}
    shared = set(times_a) & set(times_b)
    old_total = sum(times_a[name] for name in shared)
    if old_total <= 0:
        return 0.0
    return sum(times_b[name] for name in shared) / old_total


# -- explain-document diffs -----------------------------------------------------


def _runs_by_label(document: dict) -> Dict[str, Dict[str, dict]]:
    """{experiment: {run label: run dict}} for one explain document."""
    indexed: Dict[str, Dict[str, dict]] = {}
    for name, runs in (document.get("experiments") or {}).items():
        indexed[name] = {run.get("label", str(i)): run
                         for i, run in enumerate(runs)}
    return indexed


def diff_explain(a: dict, b: dict, label_a: str, label_b: str) -> List[str]:
    """Attributed diffs for every run present in both explain documents."""
    runs_a, runs_b = _runs_by_label(a), _runs_by_label(b)
    lines = [f"explain diff: {label_a}  ->  {label_b}"]
    compared = 0
    for name in sorted(set(runs_a) & set(runs_b)):
        for label in sorted(set(runs_a[name]) & set(runs_b[name])):
            run_a = explain.ExplainedRun.from_dict(runs_a[name][label])
            run_b = explain.ExplainedRun.from_dict(runs_b[name][label])
            diff = explain.diff_runs(run_a, run_b)
            compared += 1
            if abs(diff.makespan_delta) < 1e-12:
                continue
            lines.append("")
            lines.append(explain.format_diff(diff))
    unmatched_a = sum(
        len(set(runs_a[name]) - set(runs_b.get(name, {}))) for name in runs_a
    )
    unmatched_b = sum(
        len(set(runs_b[name]) - set(runs_a.get(name, {}))) for name in runs_b
    )
    lines.append("")
    summary = f"compared {compared} run(s)"
    if unmatched_a or unmatched_b:
        summary += (
            f"; unmatched: {unmatched_a} only in {label_a}, "
            f"{unmatched_b} only in {label_b}"
        )
    lines.append(summary)
    return lines


def _explain_factor(a: dict, b: dict) -> float:
    """Summed-makespan ratio over runs present in both documents."""
    runs_a, runs_b = _runs_by_label(a), _runs_by_label(b)
    old_total = new_total = 0.0
    for name in set(runs_a) & set(runs_b):
        for label in set(runs_a[name]) & set(runs_b[name]):
            old_total += runs_a[name][label].get("makespan_seconds", 0.0)
            new_total += runs_b[name][label].get("makespan_seconds", 0.0)
    if old_total <= 0:
        return 0.0
    return new_total / old_total


# -- flight-recorder event-log diffs --------------------------------------------


def _seconds_percentiles(records: List[dict]) -> Dict[str, Dict[str, float]]:
    """{event type: p50/p90/p99 of its ``seconds`` field} for one log."""
    by_type: Dict[str, Histogram] = {}
    for event in records:
        seconds = event.get("seconds")
        if isinstance(seconds, bool) or not isinstance(seconds, (int, float)):
            continue
        histogram = by_type.setdefault(event.get("type", "?"), Histogram())
        histogram.observe(float(seconds))
    return {
        name: histogram.percentiles()
        for name, histogram in by_type.items()
        if histogram.count
    }


def diff_events(
    a: List[dict], b: List[dict], label_a: str, label_b: str
) -> List[str]:
    """Count + percentile deltas per event type between two logs."""
    counts_a = events_mod.counts_by_type(a)
    counts_b = events_mod.counts_by_type(b)
    lines = [f"event diff: {label_a} ({len(a)} events)  ->  "
             f"{label_b} ({len(b)} events)"]
    for name in sorted(set(counts_a) | set(counts_b)):
        old, new = counts_a.get(name, 0), counts_b.get(name, 0)
        delta = new - old
        sign = "+" if delta >= 0 else "-"
        lines.append(
            f"  {name:>22} {old:6d} -> {new:6d}  {sign}{abs(delta)}"
        )
    pct_a = _seconds_percentiles(a)
    pct_b = _seconds_percentiles(b)
    shared = sorted(set(pct_a) & set(pct_b))
    if shared:
        lines.append("  seconds percentiles (old -> new):")
        for name in shared:
            for quantile in ("p50", "p90", "p99"):
                old = pct_a[name][quantile]
                new = pct_b[name][quantile]
                delta = new - old
                sign = "+" if delta >= 0 else "-"
                factor = f" ({new / old:.2f}x)" if old > 0 else ""
                lines.append(
                    f"    {name:>20} {quantile} {old:10.6f}s -> "
                    f"{new:10.6f}s  {sign}{abs(delta):.6f}s{factor}"
                )
    return lines


def _events_factor(a: List[dict], b: List[dict]) -> float:
    """New/old total of ``experiment.end`` seconds (0 = not comparable)."""
    def total(records):
        return sum(
            float(e.get("seconds", 0.0))
            for e in records
            if e.get("type") == "experiment.end"
            and isinstance(e.get("seconds"), (int, float))
        )

    old_total = total(a)
    if old_total <= 0:
        return 0.0
    return total(b) / old_total


def check_events(records: List[dict]) -> List[str]:
    """Schema problems in a flight-recorder log ([] = clean)."""
    return events_mod.validate_events(records)


# -- invariant audit ------------------------------------------------------------


def check_invariants(document: dict) -> List[str]:
    """Every invariant violation in an explain document ([] = clean)."""
    problems: List[str] = []
    for name, runs in sorted((document.get("experiments") or {}).items()):
        for run_dict in runs:
            run = explain.ExplainedRun.from_dict(run_dict)
            for problem in run.verify():
                problems.append(f"{name} / {run.label}: {problem}")
    return problems


# -- co-processing gate ---------------------------------------------------------

_COPROCESS_RUN = "run:Co-Processing Join (CPU+GPU)"
_SEARCH_MARKER = "[split search]"
_SINGLE_BACKEND_RUNS = (
    "run:GPU Triton Join",
    "run:CPU-Partitioned Radix Join",
)


def check_coprocess(document: dict) -> List[str]:
    """Audit an explain document's co-processing runs ([] = clean).

    For every experiment that simulated a co-processing join (split-
    search candidates, labelled ``[split search]``, don't count), each
    production run must have kept both processors busy (non-zero
    average ``cpu_cores`` and ``gpu_sm`` utilization) and must beat the
    index-aligned single-backend runs — the i-th co-processing makespan
    may not exceed the i-th Triton or i-th CPU-partitioned one, which
    the fig16 harness emits per size in that order.
    """
    problems: List[str] = []
    saw_coprocess = False
    for name, runs in sorted((document.get("experiments") or {}).items()):
        by_kind: Dict[str, List[dict]] = {}
        for run in runs:
            label = run.get("label", "")
            if _SEARCH_MARKER in label:
                continue
            for kind in (_COPROCESS_RUN,) + _SINGLE_BACKEND_RUNS:
                if kind in label:
                    by_kind.setdefault(kind, []).append(run)
        coprocess = by_kind.get(_COPROCESS_RUN, [])
        if not coprocess:
            continue
        saw_coprocess = True
        for i, run in enumerate(coprocess):
            label = run.get("label", f"coprocess[{i}]")
            utilization = run.get("average_utilization") or {}
            for resource in ("cpu_cores", "gpu_sm"):
                if not utilization.get(resource, 0.0) > 0.0:
                    problems.append(
                        f"{name} / {label}: {resource} utilization is "
                        f"{utilization.get(resource, 0.0)!r}; co-processing "
                        "must keep both pools busy"
                    )
            for kind in _SINGLE_BACKEND_RUNS:
                singles = by_kind.get(kind, [])
                if i >= len(singles):
                    continue
                single = singles[i]
                if run["makespan_seconds"] > single["makespan_seconds"]:
                    problems.append(
                        f"{name} / {label}: makespan "
                        f"{run['makespan_seconds']:.6g}s exceeds "
                        f"{single.get('label', kind)} "
                        f"({single['makespan_seconds']:.6g}s)"
                    )
    if not saw_coprocess:
        problems.append(
            "no co-processing runs found in the document (wrong "
            "experiment, or the operator never simulated?)"
        )
    return problems


# -- out-of-core gate -----------------------------------------------------------

_OUTOFCORE_EXPERIMENT = "ext_outofcore"
_CHECKSUM_GAUGE = "exec.outofcore.checksum_ok"
_SPEEDUP_GAUGE = "exec.pool.speedup"


def check_outofcore(document: dict, min_speedup: float = 1.0) -> List[str]:
    """Audit a smoke report's out-of-core gauges ([] = clean).

    The report must carry at least one ``ext_outofcore`` entry whose
    gauges show ``exec.outofcore.checksum_ok == 1`` (every out-of-core
    mode — spill, serial morsels, morsel pool — produced a match
    summary byte-identical to the in-memory reference) and
    ``exec.pool.speedup >= min_speedup`` (the morsel pool at least
    matches the single-process join at the smoke's fig13-scale
    arrays). Both gauges are medians over the experiment's internal
    repeats, so one noisy sample cannot flip the gate.
    """
    gauges = document.get("gauges")
    if not isinstance(gauges, dict):
        return [
            "smoke report has no 'gauges' section; regenerate it with "
            "the current tools/perf_smoke.py"
        ]
    labels = sorted(
        label
        for label in gauges
        if label.split("@")[0] == _OUTOFCORE_EXPERIMENT
    )
    if not labels:
        return [
            f"no {_OUTOFCORE_EXPERIMENT} entry in the smoke report; run "
            f"tools/perf_smoke.py --experiments {_OUTOFCORE_EXPERIMENT}@4096"
        ]
    problems: List[str] = []
    for label in labels:
        values = gauges.get(label) or {}
        checksum_ok = values.get(_CHECKSUM_GAUGE)
        if checksum_ok != 1.0:
            problems.append(
                f"{label}: {_CHECKSUM_GAUGE} is {checksum_ok!r}; an "
                "out-of-core mode diverged from the in-memory reference"
            )
        speedup = values.get(_SPEEDUP_GAUGE)
        if speedup is None:
            problems.append(f"{label}: {_SPEEDUP_GAUGE} gauge missing")
        elif speedup < min_speedup:
            problems.append(
                f"{label}: morsel pool speedup {speedup:.3f}x is below "
                f"the {min_speedup:g}x gate"
            )
    return problems


# -- service gate ---------------------------------------------------------------


def check_service(
    report: dict, baseline: dict, max_p99_factor: float = 25.0
) -> List[str]:
    """Audit a load-generator report against the committed baseline.

    Deterministic facts gate strictly: zero incorrect/failed queries,
    and the results digest, rejected tally, and per-type event counts
    byte-equal to ``BENCH_service.json`` (same queries/workers/seed —
    the service's scheduling must not leak into results). Wall-clock
    latency gates loosely: p99 within ``max_p99_factor`` of the
    baseline's (different machines, same order of magnitude).
    """
    problems: List[str] = []
    for field in ("queries", "workers", "seed", "theta"):
        if report.get(field) != baseline.get(field):
            problems.append(
                f"report ran {field}={report.get(field)!r} but the "
                f"baseline has {field}={baseline.get(field)!r}; rerun "
                "tools/load_gen.py with the baseline's parameters"
            )
    if problems:
        return problems
    got = report.get("deterministic") or {}
    want = baseline.get("deterministic") or {}
    for count in ("incorrect", "failed"):
        if got.get(count):
            problems.append(
                f"{got[count]} {count} quer(ies): concurrent results "
                "diverged from the serial references"
            )
    for field in ("results_digest", "rejected", "event_counts"):
        if got.get(field) != want.get(field):
            problems.append(
                f"deterministic field {field!r} is {got.get(field)!r}; "
                f"baseline has {want.get(field)!r} — same-seed runs "
                "must be byte-identical"
            )
    p99 = ((report.get("latency") or {}).get("percentiles") or {}).get("p99")
    base_p99 = (
        (baseline.get("latency") or {}).get("percentiles") or {}
    ).get("p99")
    if p99 is None:
        problems.append("report has no latency.percentiles.p99")
    elif base_p99 and p99 > base_p99 * max_p99_factor:
        problems.append(
            f"p99 {p99 * 1e3:.1f} ms exceeds {max_p99_factor:g}x the "
            f"baseline's {base_p99 * 1e3:.1f} ms"
        )
    return problems


# -- SLO gate -------------------------------------------------------------------


def check_slo(
    report: dict,
    baseline: Optional[dict] = None,
    history: Optional[dict] = None,
    anomaly_factor: float = 5.0,
) -> List[str]:
    """Audit a load-generator report's SLO section ([] = clean).

    Every declared objective must be met (its bad fraction within the
    error budget). Error-kind objectives are deterministic — exact
    count ratios of the seeded workload — so when the committed
    baseline carries an ``slo`` section, their (total, bad) tallies
    must match it exactly; latency objectives are wall clock and only
    gate on their own budget. When a perf trajectory is supplied, it
    is swept for per-experiment anomalies (seconds blowing past
    ``anomaly_factor`` times their trailing mean) with the same
    "observed over allowed" lens.
    """
    from repro.telemetry import slo as slo_mod

    slo_report = report.get("slo")
    if not isinstance(slo_report, dict):
        return [
            "report has no 'slo' section; rerun tools/load_gen.py "
            "with --slo"
        ]
    problems: List[str] = []
    verdicts = slo_report.get("objectives") or []
    if not verdicts:
        problems.append("slo section declares no objectives")
    for verdict in verdicts:
        if not verdict.get("ok"):
            problems.append(
                f"objective {verdict.get('name')!r} violated: bad "
                f"fraction {verdict.get('bad_fraction', 0.0):.4%} exceeds "
                f"the {verdict.get('error_budget', 0.0):.4%} error budget "
                f"(burn rate {verdict.get('burn_rate', 0.0):.2f})"
            )
    baseline_slo = (baseline or {}).get("slo") or {}
    baseline_verdicts = {
        v.get("name"): v for v in baseline_slo.get("objectives") or []
    }
    for verdict in verdicts:
        if verdict.get("kind") != "errors":
            continue
        want = baseline_verdicts.get(verdict.get("name"))
        if want is None:
            continue
        for field in ("objective", "total", "bad"):
            if verdict.get(field) != want.get(field):
                problems.append(
                    f"objective {verdict.get('name')!r}: deterministic "
                    f"field {field!r} is {verdict.get(field)!r}; baseline "
                    f"has {want.get(field)!r}"
                )
    if history is not None:
        for anomaly in slo_mod.history_anomalies(
            history, factor=anomaly_factor
        ):
            problems.append(
                f"history entry {anomaly['entry']} "
                f"({anomaly['timestamp']}): {anomaly['experiment']} took "
                f"{anomaly['seconds']:.3f}s, {anomaly['ratio']:.1f}x its "
                f"trailing mean {anomaly['trailing_mean']:.3f}s"
            )
    return problems


# -- trace gate -----------------------------------------------------------------


def check_trace(document: dict, min_traces: int = 1) -> List[str]:
    """Audit a Chrome trace document's span forest ([] = clean).

    Runs the exporter's structural validator (events well-formed, host
    spans nested) plus the trace-context validator (ids valid, span
    forest acyclic, no orphan parents, sim tracks tagged with known
    traces), and requires at least ``min_traces`` distinct trace trees.
    """
    from repro.telemetry import tracing
    from repro.telemetry.export import validate_chrome_trace

    problems = list(validate_chrome_trace(document))
    problems += tracing.validate_chrome_trace_tree(document)
    trace_ids = {
        event.get("args", {}).get("trace")
        for event in document.get("traceEvents", [])
        if event.get("cat") == "trace" and event.get("ph") == "X"
    }
    trace_ids.discard(None)
    if len(trace_ids) < min_traces:
        problems.append(
            f"document has {len(trace_ids)} trace tree(s); expected at "
            f"least {min_traces} (was the run traced?)"
        )
    return problems


# -- history --------------------------------------------------------------------


def last_two_entries(path: pathlib.Path) -> Tuple[dict, dict, str, str]:
    """The trajectory's last two entries as (a, b, label_a, label_b)."""
    entries = _load(path).get("entries")
    if not isinstance(entries, list) or len(entries) < 2:
        raise SystemExit(
            f"bench_diff: {path} has fewer than two history entries; "
            "run tools/perf_smoke.py to append one"
        )
    a, b = entries[-2], entries[-1]
    return (
        a,
        b,
        a.get("timestamp", "entry[-2]"),
        b.get("timestamp", "entry[-1]"),
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/bench_diff.py",
        description="Diff two benchmark artifacts and name what moved.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=pathlib.Path,
        help="two reports to diff (explain documents or smoke reports)",
    )
    parser.add_argument(
        "--history",
        nargs="?",
        type=pathlib.Path,
        const=DEFAULT_HISTORY,
        default=None,
        metavar="PATH",
        help="diff the last two entries of the perf trajectory "
        f"(default {DEFAULT_HISTORY.name})",
    )
    parser.add_argument(
        "--check-invariants",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="audit one explain document against the attribution "
        "invariants; exits 1 on any violation",
    )
    parser.add_argument(
        "--check-coprocess",
        action="store_true",
        help="with --check-invariants: also require the document's "
        "co-processing runs to keep both pools busy and beat the "
        "aligned single-backend runs",
    )
    parser.add_argument(
        "--check-outofcore",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="audit a perf-smoke report's out-of-core gauges: checksum "
        "identity with the in-memory reference and morsel-pool speedup "
        ">= --min-pool-speedup; exits 1 on any violation",
    )
    parser.add_argument(
        "--check-events",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="validate a flight-recorder JSONL event log against the "
        "event schema; exits 1 on any violation",
    )
    parser.add_argument(
        "--check-service",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="audit a tools/load_gen.py report: zero incorrect "
        "results, and results digest / rejected tally / event counts "
        "byte-equal to the committed baseline (--service-baseline); "
        "exits 1 on any violation",
    )
    parser.add_argument(
        "--service-baseline",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_service.json",
        metavar="PATH",
        help="baseline report for --check-service "
        "(default BENCH_service.json)",
    )
    parser.add_argument(
        "--check-slo",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="audit a tools/load_gen.py report's SLO section: every "
        "objective within its error budget, error-kind tallies equal "
        "to the baseline's, no perf-history anomalies; exits 1 on any "
        "violation",
    )
    parser.add_argument(
        "--check-trace",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="audit a Chrome trace file: structure valid, trace-span "
        "forest acyclic with no orphan parents, sim tracks tagged with "
        "known traces; exits 1 on any violation",
    )
    parser.add_argument(
        "--min-traces",
        type=int,
        default=1,
        metavar="N",
        help="with --check-trace: require at least N distinct trace "
        "trees in the document (default 1)",
    )
    parser.add_argument(
        "--anomaly-factor",
        type=float,
        default=5.0,
        metavar="FACTOR",
        help="with --check-slo: flag history entries whose seconds "
        "exceed FACTOR times their trailing mean (default 5)",
    )
    parser.add_argument(
        "--max-p99-factor",
        type=float,
        default=25.0,
        metavar="FACTOR",
        help="with --check-service: allowed p99 growth over the "
        "baseline (default 25; wall clock differs across machines)",
    )
    parser.add_argument(
        "--min-pool-speedup",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="with --check-outofcore: minimum exec.pool.speedup "
        "(default 1.0: the pool must not lose to single-process)",
    )
    parser.add_argument(
        "--fail-regression",
        type=float,
        default=None,
        metavar="FACTOR",
        help="exit 1 when the shared total (seconds or makespan) grows "
        "by more than FACTOR",
    )
    args = parser.parse_args(argv)

    if args.check_coprocess and args.check_invariants is None:
        parser.error("--check-coprocess requires --check-invariants PATH")

    if args.check_events is not None:
        records = _load_events(args.check_events)
        problems = check_events(records)
        if problems:
            print(
                f"{len(problems)} event-schema violation(s) in "
                f"{len(records)} event(s):"
            )
            for problem in problems:
                print(f"  ! {problem}")
            return 1
        counts = events_mod.counts_by_type(records)
        summary = ", ".join(f"{k} x{v}" for k, v in counts.items())
        print(
            f"event schema holds over {len(records)} event(s)"
            + (f": {summary}" if summary else "")
        )
        return 0

    if args.check_service is not None:
        report = _load(args.check_service)
        if report.get("kind") != "service-load":
            parser.error(
                f"{args.check_service} is not a tools/load_gen.py report"
            )
        baseline = _load(args.service_baseline)
        problems = check_service(
            report, baseline, max_p99_factor=args.max_p99_factor
        )
        if problems:
            print(f"{len(problems)} service gate violation(s):")
            for problem in problems:
                print(f"  ! {problem}")
            return 1
        digest = report["deterministic"]["results_digest"]
        print(
            f"service gate holds: {report['queries']} queries, "
            f"0 incorrect, digest {digest} matches baseline"
        )
        return 0

    if args.check_slo is not None:
        report = _load(args.check_slo)
        baseline = (
            _load(args.service_baseline)
            if args.service_baseline.exists()
            else None
        )
        history = (
            _load(DEFAULT_HISTORY) if DEFAULT_HISTORY.exists() else None
        )
        problems = check_slo(
            report,
            baseline=baseline,
            history=history,
            anomaly_factor=args.anomaly_factor,
        )
        if problems:
            print(f"{len(problems)} SLO gate violation(s):")
            for problem in problems:
                print(f"  ! {problem}")
            return 1
        objectives = (report.get("slo") or {}).get("objectives") or []
        print(
            f"SLO gate holds: {len(objectives)} objective(s) within "
            "budget, deterministic tallies match, history clean"
        )
        return 0

    if args.check_trace is not None:
        document = _load(args.check_trace)
        problems = check_trace(document, min_traces=args.min_traces)
        if problems:
            print(f"{len(problems)} trace gate violation(s):")
            for problem in problems:
                print(f"  ! {problem}")
            return 1
        spans = sum(
            1
            for event in document.get("traceEvents", [])
            if event.get("cat") == "trace" and event.get("ph") == "X"
        )
        print(
            f"trace gate holds: {spans} spans form a well-formed "
            "trace forest"
        )
        return 0

    if args.check_outofcore is not None:
        document = _load(args.check_outofcore)
        if _kind(document) != "smoke":
            parser.error(
                f"{args.check_outofcore} is not a perf-smoke report"
            )
        problems = check_outofcore(
            document, min_speedup=args.min_pool_speedup
        )
        if problems:
            print(f"{len(problems)} out-of-core gate violation(s):")
            for problem in problems:
                print(f"  ! {problem}")
            return 1
        print(
            "out-of-core gate holds: checksum identity + pool speedup "
            f">= {args.min_pool_speedup:g}x"
        )
        return 0

    if args.check_invariants is not None:
        document = _load(args.check_invariants)
        if _kind(document) != "explain":
            parser.error(
                f"{args.check_invariants} is not an explain document"
            )
        problems = check_invariants(document)
        if args.check_coprocess:
            problems += check_coprocess(document)
        runs = sum(
            len(runs) for runs in (document.get("experiments") or {}).values()
        )
        if problems:
            print(f"{len(problems)} invariant violation(s) in {runs} run(s):")
            for problem in problems:
                print(f"  ! {problem}")
            return 1
        checked = "invariants"
        if args.check_coprocess:
            checked += " + co-processing gate"
        print(f"all {checked} hold over {runs} explained run(s)")
        return 0

    if args.history is not None:
        if args.paths:
            parser.error("--history takes no positional reports")
        a, b, label_a, label_b = last_two_entries(args.history)
        print("\n".join(diff_smoke(a, b, label_a, label_b)))
        factor = _smoke_factor(a, b)
    else:
        if len(args.paths) != 2:
            parser.error("expected exactly two report paths (or --history)")
        path_a, path_b = args.paths
        if _is_event_log(path_a) != _is_event_log(path_b):
            parser.error(
                "cannot diff an event log against a JSON report"
            )
        if _is_event_log(path_a):
            events_a = _load_events(path_a)
            events_b = _load_events(path_b)
            print(
                "\n".join(
                    diff_events(events_a, events_b, str(path_a), str(path_b))
                )
            )
            factor = _events_factor(events_a, events_b)
            if (
                args.fail_regression is not None
                and factor > args.fail_regression
            ):
                print(
                    f"bench_diff FAILED: {factor:.2f}x the baseline's "
                    f"experiment seconds (> {args.fail_regression:g}x "
                    "allowed)",
                    file=sys.stderr,
                )
                return 1
            return 0
        a, b = _load(path_a), _load(path_b)
        kind_a, kind_b = _kind(a), _kind(b)
        if kind_a != kind_b:
            parser.error(
                f"cannot diff a {kind_a} document against a {kind_b} one"
            )
        if kind_a == "history":
            parser.error("pass a trajectory via --history, not positionally")
        if kind_a == "explain":
            print("\n".join(diff_explain(a, b, str(path_a), str(path_b))))
            factor = _explain_factor(a, b)
        else:
            print("\n".join(diff_smoke(a, b, str(path_a), str(path_b))))
            factor = _smoke_factor(a, b)

    if args.fail_regression is not None and factor > args.fail_regression:
        print(
            f"bench_diff FAILED: {factor:.2f}x the baseline's shared total "
            f"(> {args.fail_regression:g}x allowed)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
