"""Flight recorder: schema, drain/absorb, pool lifecycle events, CLI.

Covers the full event path: in-process emission and validation, the
JSONL sink round-trip, the morsel pool's dispatch/steal/death/respawn/
recovery/stall events (with the deterministic ``die_on`` / ``sleep_on``
hooks), and the bench CLI surface (``--events`` / ``--prom`` /
``--live``) including the multi-process ``--jobs`` drain contract with
reused pool workers.
"""

import json
import os
import re

import numpy as np
import pytest

from repro.bench.__main__ import main as bench_main
from repro.exec.morsel import (
    execute_morsel,
    merge_partials,
    plan_morsels,
)
from repro.exec.pool import (
    _StallWatchdog,
    get_pool,
    shutdown_pool,
)
from repro.hashing.batch import DEFAULT_BUCKETS
from repro.telemetry import events
from tests.test_outofcore import shm_partition_state, summary


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Every test starts and ends with a disabled, empty recorder."""
    events.disable()
    events.reset()
    yield
    events.disable()
    events.reset()


class TestEmit:
    def test_disabled_recorder_is_a_noop(self):
        assert events.emit("experiment.start", experiment="x") is None
        assert events.events() == []

    def test_envelope_fields(self):
        events.enable()
        event = events.emit("experiment.start", experiment="fig13")
        assert event["v"] == events.EVENT_SCHEMA_VERSION
        assert event["type"] == "experiment.start"
        assert event["pid"] == os.getpid()
        assert event["seq"] == 0
        assert event["ts"] > 0
        assert event["experiment"] == "fig13"
        second = events.emit("experiment.end", experiment="fig13", seconds=1.0)
        assert second["seq"] == 1

    def test_unknown_type_raises(self):
        events.enable()
        with pytest.raises(ValueError, match="unknown event type"):
            events.emit("no.such.event")

    def test_missing_required_fields_raise(self):
        events.enable()
        with pytest.raises(ValueError, match="missing fields"):
            events.emit("run.end", operator="x")

    def test_every_emission_site_type_is_known(self):
        # The sites wired through the codebase must stay in the schema.
        for required in (
            "experiment.start", "experiment.end", "run.start", "run.end",
            "spill.shard_written", "morsel.dispatched", "morsel.stolen",
            "morsel.recovered", "pool.job.start", "pool.job.end",
            "worker.death", "worker.respawn", "worker.stalled",
            "fault.injected", "ladder.fallback",
        ):
            assert required in events.EVENT_TYPES


class TestForkConsistentClock:
    """Timestamps come from ``tracing.wall_now`` — a monotonic clock on
    a shared per-process-family basis — not ``time.time``, so a system
    clock step between fork and emit cannot scramble merged ordering."""

    def test_emit_is_immune_to_wall_clock_steps(self, monkeypatch):
        import time as time_module

        events.enable()
        before = events.emit("experiment.start", experiment="a")
        # A 1-hour backwards clock step must not move event stamps.
        real_time = time_module.time
        monkeypatch.setattr(
            time_module, "time", lambda: real_time() - 3600.0
        )
        after = events.emit("experiment.end", experiment="a", seconds=0.1)
        assert after["ts"] >= before["ts"]

    def test_event_and_span_stamps_share_one_basis(self):
        from repro.telemetry import tracing

        events.enable()
        low = tracing.wall_now()
        event = events.emit("experiment.start", experiment="a")
        high = tracing.wall_now()
        assert low <= event["ts"] <= high

    def test_forked_child_stamps_on_the_parent_basis(self):
        import time as time_module

        from repro.telemetry import tracing

        if not hasattr(os, "fork"):
            pytest.skip("no fork on this platform")
        read_fd, write_fd = os.pipe()
        before = tracing.wall_now()
        pid = os.fork()
        if pid == 0:  # child
            try:
                # Sabotage time.time in the child: wall_now must not care.
                time_module.time = lambda: 0.0
                os.write(write_fd, repr(tracing.wall_now()).encode())
            finally:
                os._exit(0)
        os.close(write_fd)
        try:
            child_stamp = float(os.read(read_fd, 64).decode())
        finally:
            os.close(read_fd)
            os.waitpid(pid, 0)
        after = tracing.wall_now()
        assert before <= child_stamp <= after


class TestDrainAbsorb:
    def test_drain_empties_the_buffer(self):
        events.enable()
        events.emit("experiment.start", experiment="a")
        drained = events.drain()
        assert len(drained) == 1
        assert events.events() == []

    def test_absorb_keeps_foreign_identity(self):
        events.enable()
        foreign = [
            {
                "v": events.EVENT_SCHEMA_VERSION,
                "type": "worker.death",
                "ts": 123.0,
                "pid": 99999,
                "seq": 0,
                "worker": 1,
            }
        ]
        assert events.absorb(foreign) == 1
        assert events.absorb(None) == 0
        assert events.events()[0]["pid"] == 99999

    def test_double_absorb_is_caught_by_validation(self):
        events.enable()
        events.emit("experiment.start", experiment="a")
        drained = events.drain()
        events.absorb(drained)
        events.absorb(drained)
        problems = events.validate_events(events.events())
        assert any("absorbed twice" in p for p in problems)


class TestValidation:
    def test_valid_stream_has_no_problems(self):
        events.enable()
        events.emit("experiment.start", experiment="a")
        events.emit("run.start", operator="op")
        events.emit("run.end", operator="op", seconds=0.1, cache_hit=False)
        events.emit("experiment.end", experiment="a", seconds=0.2)
        assert events.validate_events(events.events()) == []

    def test_bad_envelope_is_reported(self):
        problems = events.validate_events(
            [
                {"type": "worker.death"},
                {"v": 999, "type": "worker.death", "ts": 1.0,
                 "pid": 1, "seq": 0, "worker": 0},
                {"v": 1, "type": "worker.death", "ts": -5,
                 "pid": 1, "seq": 1, "worker": 0},
                {"v": 1, "type": "worker.death", "ts": 1.0,
                 "pid": True, "seq": 2, "worker": 0},
                "not an object",
            ]
        )
        assert len(problems) >= 5

    def test_missing_payload_field_is_reported(self):
        problems = events.validate_events(
            [{"v": 1, "type": "run.end", "ts": 1.0, "pid": 1, "seq": 0,
              "operator": "x"}]
        )
        assert any("missing fields" in p for p in problems)


class TestJsonlSink:
    def test_round_trip_preserves_events_sorted(self, tmp_path):
        events.enable()
        events.emit("experiment.start", experiment="a")
        events.emit("experiment.end", experiment="a", seconds=0.5)
        # An absorbed foreign event with an earlier timestamp sorts first.
        events.absorb(
            [{"v": 1, "type": "worker.death", "ts": 0.5, "pid": 7,
              "seq": 0, "worker": 2}]
        )
        path = tmp_path / "events.jsonl"
        written = events.write_jsonl(path)
        assert written == 3
        records = events.read_jsonl(path)
        assert [r["type"] for r in records] == [
            "worker.death", "experiment.start", "experiment.end",
        ]
        assert events.validate_events(records) == []

    def test_read_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="2: not JSON"):
            events.read_jsonl(path)

    def test_counts_by_type(self):
        events.enable()
        events.emit("run.start", operator="a")
        events.emit("run.start", operator="b")
        events.emit("experiment.start", experiment="x")
        assert events.counts_by_type(events.events()) == {
            "experiment.start": 1,
            "run.start": 2,
        }


class TestStallWatchdog:
    def test_flags_each_pending_worker_once(self):
        watchdog = _StallWatchdog(stall_after=1.0)
        assert watchdog.observe(b"state0", 0.0, {0, 1}) == []
        assert watchdog.observe(b"state0", 0.5, {0, 1}) == []
        flagged = watchdog.observe(b"state0", 1.5, {0, 1})
        assert [worker for worker, _ in flagged] == [0, 1]
        assert all(silent >= 1.0 for _, silent in flagged)
        # Already flagged: silence continues but no re-flagging.
        assert watchdog.observe(b"state0", 2.5, {0, 1}) == []

    def test_progress_resets_the_clock_and_flags(self):
        watchdog = _StallWatchdog(stall_after=1.0)
        watchdog.observe(b"a", 0.0, {0})
        assert watchdog.observe(b"a", 1.5, {0}) == [(0, 1.5)]
        # The control block moved: stall over, flag set cleared.
        assert watchdog.observe(b"b", 2.0, {0}) == []
        assert watchdog.observe(b"b", 2.5, {0}) == []
        assert watchdog.observe(b"b", 3.5, {0}) == [(0, 1.5)]


def _pool_job(source, blocks, **extra):
    job = {
        "mode": "shm",
        "blocks": {name: block.descriptor() for name, block in blocks},
        "build_offsets": source.build_offsets,
        "probe_offsets": source.probe_offsets,
        "buckets": DEFAULT_BUCKETS,
    }
    job.update(extra)
    return job


class TestPoolEvents:
    def test_steal_death_recovery_and_respawn_events(self, small_workload):
        """Two faulted pool jobs must leave a full lifecycle trail.

        Job 1 parks worker 0 on its first morsel (``sleep_on``), so
        worker 1 drains its own range and then *steals* the rest of
        worker 0's — a deterministic steal. Job 2 kills worker 0 on its
        first claim (``die_on``) — a deterministic death, inline
        recovery, and respawn. Both joins must still merge to the exact
        in-memory reference, and the combined event stream must be
        schema-valid with every lifecycle type present.
        """
        from repro.join.batched import batched_radix_join

        reference = batched_radix_join(
            small_workload.build, small_workload.probe, 6, 4
        )
        source, blocks = shm_partition_state(
            small_workload.build, small_workload.probe
        )
        morsels = plan_morsels(
            np.diff(source.build_offsets),
            np.diff(source.probe_offsets),
            2048,
        )
        assert len(morsels) >= 4

        def recover(morsel):
            return execute_morsel(source, morsel, DEFAULT_BUCKETS)

        events.enable()
        try:
            pool = get_pool(2)
            # Job 1: worker 0 parks on its first morsel; worker 1
            # finishes its own range and steals from worker 0's.
            stolen_run = pool.run(
                _pool_job(
                    source, blocks,
                    sleep_on={0: (morsels[0].index, 1.0)},
                ),
                morsels,
                recover,
            )
            assert stolen_run.steals >= 1
            assert summary(merge_partials(stolen_run.partials)) == summary(
                reference
            )
            # Job 2: worker 0 dies on its first claim; the parent must
            # recover the hole inline and respawn the worker.
            died_run = pool.run(
                _pool_job(source, blocks, die_on={0: morsels[0].index}),
                morsels,
                recover,
            )
            assert died_run.deaths == 1
            assert died_run.recovered >= 1
            assert summary(merge_partials(died_run.partials)) == summary(
                reference
            )
        finally:
            for _name, block in blocks:
                block.release()
            shutdown_pool()

        recorded = events.events()
        assert events.validate_events(recorded) == []
        counts = events.counts_by_type(recorded)
        assert counts["pool.job.start"] == 2
        assert counts["pool.job.end"] == 2
        assert counts["morsel.stolen"] >= 1
        assert counts["worker.death"] >= 1
        assert counts["worker.respawn"] >= 1
        assert counts["morsel.recovered"] >= 1
        # Dispatches come from the worker processes (foreign pids),
        # the lifecycle events from the parent: the drain/absorb
        # contract carried both into one stream.
        dispatch_pids = {
            e["pid"] for e in recorded if e["type"] == "morsel.dispatched"
        }
        assert dispatch_pids and os.getpid() not in dispatch_pids
        stolen = [e for e in recorded if e["type"] == "morsel.stolen"]
        assert all(e["victim"] in (0, 1) for e in stolen)

    def test_watchdog_flags_parked_worker(self, small_workload):
        source, blocks = shm_partition_state(
            small_workload.build, small_workload.probe
        )
        morsels = plan_morsels(
            np.diff(source.build_offsets),
            np.diff(source.probe_offsets),
            2048,
        )

        def recover(morsel):
            return execute_morsel(source, morsel, DEFAULT_BUCKETS)

        events.enable()
        try:
            pool = get_pool(2)
            result = pool.run(
                _pool_job(
                    source, blocks,
                    # Park worker 0 well past the stall threshold.
                    # Worker 1 drains and steals everything else within
                    # a poll or two, after which the control block goes
                    # still — the silence the watchdog must flag.
                    sleep_on={0: (morsels[0].index, 1.6)},
                ),
                morsels,
                recover,
                stall_after=0.5,
            )
            assert result.stalls >= 1
            assert result.deaths == 0
        finally:
            for _name, block in blocks:
                block.release()
            shutdown_pool()
        stalled = [
            e for e in events.events() if e["type"] == "worker.stalled"
        ]
        assert stalled
        assert all(e["silent_seconds"] >= 0.5 for e in stalled)
        assert events.validate_events(events.events()) == []


SMALL_ARGS = ["--sizes", "128", "--divisor", "1048576"]


class TestBenchCli:
    def test_events_flag_writes_schema_valid_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert bench_main(["fig14", *SMALL_ARGS, "--events", str(path)]) == 0
        records = events.read_jsonl(path)
        assert events.validate_events(records) == []
        counts = events.counts_by_type(records)
        assert counts["experiment.start"] == 1
        assert counts["experiment.end"] == 1
        assert counts["run.start"] == counts["run.end"] >= 1
        ends = [r for r in records if r["type"] == "run.end"]
        assert all(isinstance(r["cache_hit"], bool) for r in ends)
        # The CLI's finally block left the recorder off and empty.
        assert not events.enabled()
        assert events.events() == []

    def test_jobs_round_trip_with_reused_workers(self, tmp_path, monkeypatch):
        """4 experiments over 2 workers: every worker is reused, and the
        merged log must still be schema-valid with no duplicate
        (pid, seq) pairs — the drain-once contract across processes."""
        import repro.bench.__main__ as bench_mod

        names = ["fig01", "fig04", "fig14", "fig15"]
        monkeypatch.setattr(
            bench_mod,
            "ALL_EXPERIMENTS",
            {name: bench_mod.ALL_EXPERIMENTS[name] for name in names},
        )
        path = tmp_path / "events.jsonl"
        assert (
            bench_main(
                ["all", "--jobs", "2", *SMALL_ARGS, "--events", str(path)]
            )
            == 0
        )
        records = events.read_jsonl(path)
        assert events.validate_events(records) == []
        counts = events.counts_by_type(records)
        assert counts["experiment.start"] == len(names)
        assert counts["experiment.end"] == len(names)
        pids = {r["pid"] for r in records}
        assert 1 < len(pids) <= 2

    def test_prom_flag_writes_valid_exposition(self, tmp_path):
        from repro.telemetry import prometheus

        path = tmp_path / "out.prom"
        assert bench_main(["fig14", *SMALL_ARGS, "--prom", str(path)]) == 0
        text = path.read_text()
        assert prometheus.validate_prometheus(text) == []
        samples = prometheus.parse_prometheus(text)
        assert samples["repro_bench_experiment_seconds_count"] >= 1
        assert any(
            key.startswith("repro_bench_experiment_seconds_bucket")
            for key in samples
        )

    def test_live_does_not_corrupt_stdout_in_non_tty(self, capsys):
        """Non-TTY ``--live``: stdout must be byte-identical to a run
        without the flag (modulo the wall-clock suffix line), and the
        dashboard's plain lines must all land on stderr."""
        def normalized(argv):
            assert bench_main(argv) == 0
            captured = capsys.readouterr()
            out = re.sub(
                r"\[fig14: [0-9.]+s\]", "[fig14: Xs]", captured.out
            )
            return out, captured.err

        plain_out, plain_err = normalized(["fig14", *SMALL_ARGS])
        live_out, live_err = normalized(["fig14", *SMALL_ARGS, "--live"])
        assert live_out == plain_out
        assert "[live]" not in live_out
        assert "[live] start fig14" in live_err
        assert "[live] done  fig14" in live_err
        assert "\x1b[" not in live_err  # no ANSI on a non-TTY stream
        assert "[live]" not in plain_err

    def test_events_and_trace_compose(self, tmp_path):
        """--events + --trace: recorder instants land in the Chrome
        trace and the trace still validates."""
        from repro.telemetry.export import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        events_path = tmp_path / "events.jsonl"
        assert (
            bench_main(
                [
                    "ext_robustness", *SMALL_ARGS,
                    "--trace", str(trace_path),
                    "--events", str(events_path),
                ]
            )
            == 0
        )
        document = json.loads(trace_path.read_text())
        assert validate_chrome_trace(document) == []
        instants = [
            e
            for e in document["traceEvents"]
            if e.get("ph") == "i" and e.get("cat") == "recorder"
        ]
        assert instants, "recorder instants missing from the trace"
        # ext_robustness injects faults, so their instants must be there.
        assert any(e["name"] == "fault.injected" for e in instants)
        assert all(e["s"] == "p" and e["ts"] >= 0 for e in instants)
