"""Unit tests for the GPU cost model (repro.hw.gpu)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.gpu import GpuModel, MemoryRequest
from repro.hw.interconnect import AccessPattern, Op
from repro.hw.tlb import MemSpace
from repro.units import GIB, gib


def req(**kwargs):
    defaults = dict(
        total_bytes=gib(1),
        access_bytes=128,
        op=Op.READ,
        space=MemSpace.CPU,
        pattern=AccessPattern.SEQUENTIAL,
    )
    defaults.update(kwargs)
    return MemoryRequest(**defaults)


class TestMemoryRequest:
    def test_footprint_defaults_to_total(self):
        assert req().footprint == gib(1)

    def test_explicit_footprint(self):
        assert req(footprint_bytes=gib(4)).footprint == gib(4)

    def test_access_count(self):
        assert req(total_bytes=1280, access_bytes=128).accesses == 10

    def test_rejects_negative_total(self):
        with pytest.raises(ConfigurationError):
            req(total_bytes=-1)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            req(efficiency=0.0)


class TestCpuMemoryPath:
    def test_sequential_runs_at_link_speed(self, gpu_model):
        cost = gpu_model.access_cost(req())
        assert cost.bandwidth_bytes_per_s == pytest.approx(gib(63.5))

    def test_sequential_counts_coalesced_walks(self, gpu_model):
        cost = gpu_model.access_cost(req())
        # One coalesced walk per 32 MiB.
        assert cost.counters.iommu_requests == pytest.approx(32.0)

    def test_random_within_tlb_uses_granularity_curve(self, gpu_model):
        cost = gpu_model.access_cost(
            req(pattern=AccessPattern.RANDOM, access_bytes=16)
        )
        assert cost.bandwidth_bytes_per_s < gib(12)
        assert cost.counters.iommu_requests == 0.0

    def test_random_out_of_tlb_hits_walker_ceiling(self, gpu_model):
        cost = gpu_model.access_cost(
            req(
                pattern=AccessPattern.RANDOM,
                access_bytes=16,
                total_bytes=gib(64),
                footprint_bytes=gib(64),
            )
        )
        # Half the accesses walk: the 12-walker pool limits throughput
        # to a few million accesses per second.
        assert cost.bandwidth_bytes_per_s < gib(0.5)
        assert cost.walks > 0

    def test_stream_pattern_counts_flush_misses(self, gpu_model):
        cost = gpu_model.access_cost(
            req(
                pattern=AccessPattern.RANDOM,
                access_bytes=1024,
                stream_count=128,
            )
        )
        # 1 - 64/128 = half the flushes miss the GPU TLB.
        assert cost.counters.iommu_requests == pytest.approx(
            cost.counters.gpu_tlb_misses
        )
        accesses = gib(1) / 1024
        assert cost.counters.iommu_requests == pytest.approx(0.5 * accesses)

    def test_stream_pattern_within_entries_is_free(self, gpu_model):
        cost = gpu_model.access_cost(
            req(
                pattern=AccessPattern.RANDOM,
                access_bytes=1024,
                stream_count=32,
            )
        )
        assert cost.counters.iommu_requests == 0.0

    def test_duplex_caps_bandwidth(self, gpu_model):
        cost = gpu_model.access_cost(req(duplex=True))
        assert cost.bandwidth_bytes_per_s == pytest.approx(gib(55.9))

    def test_efficiency_scales_bandwidth(self, gpu_model):
        full = gpu_model.access_cost(req())
        derated = gpu_model.access_cost(req(efficiency=0.5))
        assert derated.bandwidth_bytes_per_s == pytest.approx(
            full.bandwidth_bytes_per_s * 0.5
        )

    def test_counters_track_direction(self, gpu_model):
        read = gpu_model.access_cost(req()).counters
        write = gpu_model.access_cost(req(op=Op.WRITE)).counters
        assert read.cpu_mem_read_bytes == gib(1)
        assert read.cpu_mem_write_bytes == 0
        assert write.cpu_mem_write_bytes == gib(1)
        assert write.nvlink_wire_to_cpu_bytes > write.nvlink_wire_to_gpu_bytes
        assert read.nvlink_wire_to_gpu_bytes > read.nvlink_wire_to_cpu_bytes


class TestGpuMemoryPath:
    def test_sequential_at_peak(self, gpu_model):
        cost = gpu_model.access_cost(req(space=MemSpace.GPU))
        assert cost.bandwidth_bytes_per_s == pytest.approx(900e9)

    def test_random_reads_beat_random_writes(self, gpu_model):
        # Paper section 6.2.9: random reads 3.2-6x faster than writes.
        read = gpu_model.access_cost(
            req(space=MemSpace.GPU, pattern=AccessPattern.RANDOM, access_bytes=32)
        )
        write = gpu_model.access_cost(
            req(
                space=MemSpace.GPU,
                pattern=AccessPattern.RANDOM,
                access_bytes=32,
                op=Op.WRITE,
            )
        )
        ratio = read.bandwidth_bytes_per_s / write.bandwidth_bytes_per_s
        assert 3.0 < ratio < 6.5

    def test_large_bursts_regain_locality(self, gpu_model):
        small = gpu_model.access_cost(
            req(space=MemSpace.GPU, pattern=AccessPattern.RANDOM,
                access_bytes=32, op=Op.WRITE)
        )
        burst = gpu_model.access_cost(
            req(space=MemSpace.GPU, pattern=AccessPattern.RANDOM,
                access_bytes=16384, op=Op.WRITE)
        )
        assert burst.bandwidth_bytes_per_s > 5 * small.bandwidth_bytes_per_s

    def test_no_iommu_involvement(self, gpu_model):
        cost = gpu_model.access_cost(
            req(space=MemSpace.GPU, pattern=AccessPattern.RANDOM,
                access_bytes=16, footprint_bytes=gib(12))
        )
        assert cost.counters.iommu_requests == 0.0
        assert cost.walks == 0.0


class TestCompute:
    def test_compute_time(self, gpu_model):
        ops = gpu_model.spec.total_ops_per_s
        assert gpu_model.compute_time(ops) == pytest.approx(1.0)

    def test_sm_fraction(self, gpu_model):
        full = gpu_model.compute_time(1e9)
        half = gpu_model.compute_time(1e9, sm_fraction=0.5)
        assert half == pytest.approx(2 * full)

    def test_rejects_bad_fraction(self, gpu_model):
        with pytest.raises(ConfigurationError):
            gpu_model.compute_time(1.0, sm_fraction=0.0)

    def test_zero_bytes_is_free(self, gpu_model):
        cost = gpu_model.access_cost(req(total_bytes=0))
        assert cost.seconds == 0.0
