"""Unit tests for the hardware specs and presets (repro.hw.specs)."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.hw.specs import (
    CpuSpec,
    GpuSpec,
    InterconnectSpec,
    MemorySpec,
    ac922,
    nvlink2,
    pcie3_x16,
    v100_pcie,
    xeon_system,
)
from repro.units import GIB, GB, gib_per_s


class TestAc922Preset:
    """The AC922 preset must carry the paper's section 2.1/6.1 constants."""

    def test_gpu_memory(self):
        system = ac922()
        assert system.gpu.memory.capacity_bytes == 16 * GIB
        assert system.gpu.memory.bandwidth_bytes_per_s == 900 * GB

    def test_cpu_memory(self):
        system = ac922()
        assert system.cpu.memory.capacity_bytes == 128 * GIB
        assert system.cpu.memory.electrical_bytes_per_s == 170 * GB

    def test_gpu_configuration(self):
        gpu = ac922().gpu
        assert gpu.sm_count == 80
        assert gpu.clock_hz == pytest.approx(1.53e9)
        assert gpu.warp_size == 32
        assert gpu.usable_scratchpad_bytes == 64 * 1024

    def test_cpu_configuration(self):
        cpu = ac922().cpu
        assert cpu.core_count == 16
        assert cpu.clock_hz == pytest.approx(3.8e9)
        assert cpu.smt == 4
        assert cpu.simd_bytes == 16  # 128-bit VSX

    def test_nvlink_raw_rate(self):
        link = ac922().interconnect
        assert link.raw_bytes_per_s == 75 * GB
        assert link.effective_bytes_per_s == pytest.approx(gib_per_s(63.5))
        assert link.packet_header_bytes == 16
        assert link.max_payload_bytes == 256
        assert link.transaction_bytes == 128

    def test_idle_power(self):
        assert ac922().idle_watts == 290.0

    def test_huge_pages(self):
        assert ac922().cpu.memory.page_bytes == 2 * 1024 * 1024


class TestTlbSpec:
    def test_l2_reach_is_8_gib(self):
        assert ac922().gpu.tlb.l2_reach_bytes == 8 * GIB

    def test_entry_reach_is_32_mib(self):
        assert ac922().gpu.tlb.entry_reach_bytes == 32 * 1024 * 1024

    def test_measured_latencies(self):
        tlb = ac922().gpu.tlb
        assert tlb.l2_hit_gpu_mem_s == pytest.approx(151.9e-9)
        assert tlb.l2_miss_gpu_mem_s == pytest.approx(226.7e-9)
        assert tlb.l2_hit_cpu_mem_s == pytest.approx(449.7e-9)
        assert tlb.full_miss_latency_s == pytest.approx(3186.4e-9)


class TestIommuSpec:
    def test_walker_pool(self):
        iommu = ac922().cpu.iommu
        assert iommu.page_table_walkers == 12
        assert iommu.walk_coalescing == 16

    def test_translation_rate_positive(self):
        assert ac922().cpu.iommu.translations_per_s > 1e6


class TestXeonPreset:
    def test_core_count(self):
        assert xeon_system().cpu.core_count == 12

    def test_small_l3_slice(self):
        # The 1.25 MiB/core L3 budget drives the two-pass switch.
        assert xeon_system().cpu.cache.swwc_budget_per_core < ac922().cpu.cache.swwc_budget_per_core


class TestPciePreset:
    def test_pcie_is_slower_than_nvlink(self):
        assert (
            pcie3_x16().effective_bytes_per_s < nvlink2().effective_bytes_per_s
        )

    def test_v100_pcie_system(self):
        assert v100_pcie().interconnect.name.startswith("PCI-e")


class TestValidation:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MemorySpec(capacity_bytes=-1, bandwidth_bytes_per_s=1.0,
                       electrical_bytes_per_s=1.0)

    def test_random_factor_range(self):
        with pytest.raises(ConfigurationError):
            MemorySpec(capacity_bytes=1, bandwidth_bytes_per_s=1.0,
                       electrical_bytes_per_s=1.0, random_read_factor=1.5)

    def test_effective_cannot_exceed_raw(self):
        with pytest.raises(ConfigurationError):
            InterconnectSpec(
                name="bogus",
                raw_bytes_per_s=10.0,
                effective_bytes_per_s=20.0,
                duplex_bytes_per_s=5.0,
            )

    def test_duplex_cannot_exceed_effective(self):
        with pytest.raises(ConfigurationError):
            InterconnectSpec(
                name="bogus",
                raw_bytes_per_s=30.0,
                effective_bytes_per_s=20.0,
                duplex_bytes_per_s=25.0,
            )

    def test_gpu_scratchpad_bound(self):
        with pytest.raises(ConfigurationError):
            GpuSpec(usable_scratchpad_bytes=200 * 1024)

    def test_cpu_smt_positive(self):
        spec = ac922().cpu
        with pytest.raises(ConfigurationError):
            dataclasses.replace(spec, smt=0)


class TestDerivedProperties:
    def test_with_sm_count(self):
        gpu = ac922().gpu.with_sm_count(40)
        assert gpu.sm_count == 40
        assert gpu.total_ops_per_s == pytest.approx(40 * gpu.ops_per_sm_per_s)

    def test_with_gpu(self):
        system = ac922()
        modified = system.with_gpu(system.gpu.with_sm_count(8))
        assert modified.gpu.sm_count == 8
        assert system.gpu.sm_count == 80  # original untouched

    def test_memory_capacities(self):
        system = ac922()
        assert system.gpu_memory_capacity == 16 * GIB
        assert system.cpu_memory_capacity == 128 * GIB
