"""Unit tests for the columnar relation (repro.data.relation)."""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.errors import ConfigurationError


def make(rows=10, payloads=1, nominal=None):
    keys = np.arange(1, rows + 1, dtype=np.int64)
    cols = {f"attr{i}": keys * (i + 2) for i in range(payloads)}
    return Relation(keys, cols, nominal_rows=nominal, name="t")


class TestConstruction:
    def test_basic(self):
        r = make(5)
        assert len(r) == 5
        assert r.payload_columns == 1

    def test_keys_coerced_to_int64(self):
        r = Relation(np.array([1, 2, 3], dtype=np.int32))
        assert r.keys.dtype == np.int64

    def test_payload_shape_checked(self):
        with pytest.raises(ConfigurationError):
            Relation(np.arange(3), {"bad": np.arange(4)})

    def test_keys_must_be_1d(self):
        with pytest.raises(ConfigurationError):
            Relation(np.zeros((2, 2)))

    def test_nominal_cannot_be_smaller(self):
        with pytest.raises(ConfigurationError):
            make(10, nominal=5)


class TestSizes:
    def test_tuple_bytes(self):
        assert make(payloads=0).tuple_bytes == 8
        assert make(payloads=1).tuple_bytes == 16  # paper default
        assert make(payloads=16).tuple_bytes == 136

    def test_nominal_bytes(self):
        r = make(10, nominal=1000)
        assert r.nominal_bytes == 1000 * 16
        assert r.materialized_bytes == 10 * 16

    def test_scale_divisor(self):
        assert make(10, nominal=1000).scale_divisor == pytest.approx(100.0)

    def test_scale_divisor_identity(self):
        assert make(10).scale_divisor == 1.0


class TestAccess:
    def test_column_names(self):
        assert make().column_names() == ["key", "attr0"]

    def test_key_column(self):
        r = make(3)
        assert list(r.column("key")) == [1, 2, 3]

    def test_payload_column(self):
        r = make(3)
        assert list(r.column("attr0")) == [2, 4, 6]

    def test_unknown_column(self):
        with pytest.raises(ConfigurationError):
            make().column("ghost")


class TestTake:
    def test_reorders_all_columns_together(self):
        r = make(5)
        taken = r.take(np.array([4, 0, 2]))
        assert list(taken.keys) == [5, 1, 3]
        assert list(taken.payloads["attr0"]) == [10, 2, 6]

    def test_nominal_scales_proportionally(self):
        r = make(10, nominal=1000)
        half = r.take(np.arange(5))
        assert half.nominal_rows == 500

    def test_head(self):
        r = make(10)
        assert len(r.head(3)) == 3
        with pytest.raises(ConfigurationError):
            r.head(11)

    def test_with_nominal_rows(self):
        r = make(10).with_nominal_rows(500)
        assert r.nominal_rows == 500
        assert len(r) == 10

    def test_take_empty(self):
        taken = make(5).take(np.array([], dtype=np.int64))
        assert len(taken) == 0
