"""Co-processing join: split correctness, search quality, collapse.

Covers the cost-based CPU+GPU co-processing operator
(:class:`repro.join.coprocess.CoProcessingJoin`) and the advisor's
split search (:meth:`repro.advisor.JoinAdvisor.recommend_split`):

- the split join's functional output is byte-identical to the
  single-backend reference at any fraction (hash partitions are
  disjoint, so the merged sub-joins reconstruct the whole join);
- the headline acceptance claim: with the advisor's split it beats
  both single-backend operators end-to-end at every Fig. 16 size while
  keeping both pools busy;
- under faults the operator collapses onto the surviving processor
  (GPU brownout -> all-CPU, CPU task death -> all-GPU), and the
  co-processing ladder falls through to the standard rungs only when
  both collapse targets are dead;
- split plans are memoized in the run cache per fault plan;
- Hypothesis: the searched fraction lands within one search step of
  the empirical argmin on randomized cardinalities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.advisor import _COSTING_DIVISOR, JoinAdvisor
from repro.data.generator import generate_workload
from repro.errors import CapacityError, ConfigurationError
from repro.faults import FaultPlan, RetryPolicy, TaskFault
from repro.join import (
    CoProcessingJoin,
    CpuPartitionedJoin,
    DegradationLadder,
    TritonJoin,
    coprocess_rungs,
    reference_join,
    run_cache,
)
from repro.join.coprocess import merge_matches


@pytest.fixture(scope="module")
def workload():
    return generate_workload(128, 128, scale_divisor=65536, seed=13)


@pytest.fixture(scope="module")
def expected(workload):
    return reference_join(workload.build, workload.probe)


class TestFunctionalIdentity:
    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_split_matches_reference(self, system, workload, expected, fraction):
        run = CoProcessingJoin(system, cpu_fraction=fraction).run(workload)
        assert run.match == expected

    def test_reference_mode_crosscheck(self, system, workload):
        split = CoProcessingJoin(system, cpu_fraction=0.4).run(workload)
        whole = CoProcessingJoin(
            system, cpu_fraction=0.4, reference=True
        ).run(workload)
        assert split.match == whole.match

    def test_matches_single_backends(self, system, workload):
        co = CoProcessingJoin(system, cpu_fraction=0.3).run(workload)
        assert co.match == TritonJoin(system).run(workload).match
        assert co.match == CpuPartitionedJoin(system).run(workload).match

    def test_merge_is_checksum_exact(self, system, workload, expected):
        # The merged sub-join summaries must reconstruct the whole
        # join's checksums exactly, not just the match count.
        run = CoProcessingJoin(system, cpu_fraction=0.5).run(workload)
        assert run.match.key_checksum == expected.key_checksum
        assert run.match.payload_checksum == expected.payload_checksum

    def test_merge_adds_mod_2_62(self):
        from repro.join.base import JoinMatch

        a = JoinMatch(
            matches=3, key_checksum=2**62 - 1, payload_checksum=5
        )
        b = JoinMatch(matches=4, key_checksum=2, payload_checksum=7)
        merged = merge_matches(a, b)
        assert merged.matches == 7
        assert merged.key_checksum == 1
        assert merged.payload_checksum == 12


class TestEdges:
    def test_all_gpu_edge(self, system, workload, expected):
        run = CoProcessingJoin(system, cpu_fraction=0.0).run(workload)
        assert run.match == expected
        assert run.uses_gpu
        # No CPU-side partitions (the Triton graph itself still touches
        # cpu_cores a little, e.g. for the prefix-sum assist).
        assert run.notes["split"]["cpu_partitions"] == 0

    def test_all_cpu_edge(self, system, workload, expected):
        run = CoProcessingJoin(system, cpu_fraction=1.0).run(workload)
        assert run.match == expected
        assert not run.uses_gpu
        assert run.notes["utilization"]["gpu_busy_seconds"] == 0.0

    @pytest.mark.parametrize("fraction", [-0.1, 1.1, 2.0])
    def test_invalid_fraction_rejected(self, system, fraction):
        with pytest.raises(ConfigurationError):
            CoProcessingJoin(system, cpu_fraction=fraction)

    def test_fraction_rounds_to_whole_partitions(self, system, workload):
        run = CoProcessingJoin(system, cpu_fraction=0.37).run(workload)
        split = run.notes["split"]
        assert split["gpu_partitions"] + split["cpu_partitions"] == (
            split["fanout"]
        )
        assert run.notes["cpu_fraction"] == pytest.approx(
            split["cpu_partitions"] / split["fanout"]
        )


class TestAcceptance:
    """The ISSUE's headline: beat every single backend on fig16."""

    @pytest.mark.parametrize("size", [128, 512, 2048])
    def test_beats_both_singles_with_both_pools_busy(self, system, size):
        workload = generate_workload(size, size, scale_divisor=16384)
        co = CoProcessingJoin(system).run(workload)
        triton = TritonJoin(system).run(workload)
        cpp = CpuPartitionedJoin(system).run(workload)
        assert co.seconds < triton.seconds
        assert co.seconds < cpp.seconds
        utilization = co.notes["utilization"]
        assert utilization["gpu_idle_fraction"] <= 0.25
        assert utilization["cpu_idle_fraction"] <= 0.25
        assert co.match == triton.match == cpp.match

    def test_auto_mode_records_split_plan(self, system, workload):
        run = CoProcessingJoin(system).run(workload)
        plan = run.notes["split_plan"]
        assert 0.0 <= plan["cpu_fraction"] <= 1.0
        assert plan["seconds"] <= plan["seconds_all_gpu"]
        assert plan["seconds"] <= plan["seconds_all_cpu"]

    def test_bound_classification_present(self, system, workload):
        run = CoProcessingJoin(system, cpu_fraction=0.4).run(workload)
        utilization = run.notes["utilization"]
        assert utilization["cpu_bound"] in ("cpu_cores", "cpu_mem_bw")
        assert utilization["gpu_bound"] in (
            "gpu_sm",
            "gpu_mem_bw",
            "nvlink_to_gpu",
            "nvlink_to_cpu",
        )


class TestCollapse:
    """Under faults the operator lands on the surviving processor.

    Two mechanisms, both covered: a *pinned* fraction collapses via the
    exception path (``notes["collapsed"]``); the *auto* (advisor) mode
    never raises at all — the split search costs the dead side at
    ``inf`` and converges onto the survivor directly.
    """

    def test_pinned_gpu_capacity_loss_collapses_to_cpu(
        self, system, workload, expected
    ):
        plan = FaultPlan(gpu_memory_factor=0.01, description="gpu gone")
        with faults.injected(plan):
            run = CoProcessingJoin(system, cpu_fraction=0.4).run(workload)
        assert run.match == expected
        assert not run.uses_gpu
        assert run.notes["collapsed"]["to"] == "cpu"
        assert "CapacityError" in run.notes["collapsed"]["reason"]

    def test_pinned_gpu_kernel_death_collapses_to_cpu(
        self, system, workload, expected
    ):
        plan = FaultPlan(
            tasks=(TaskFault("join[*]", transient=False),),
            description="GPU join kernels die",
        )
        with faults.injected(plan):
            run = CoProcessingJoin(system, cpu_fraction=0.4).run(workload)
        assert run.match == expected
        assert not run.uses_gpu
        assert run.notes["collapsed"]["to"] == "cpu"

    def test_pinned_cpu_task_death_collapses_to_gpu(
        self, system, workload, expected
    ):
        plan = FaultPlan(
            tasks=(TaskFault("cpu_join", transient=False),),
            description="CPU join dies",
        )
        with faults.injected(plan):
            run = CoProcessingJoin(system, cpu_fraction=0.4).run(workload)
        assert run.match == expected
        assert run.uses_gpu
        assert run.notes["cpu_fraction"] == 0.0
        assert run.notes["collapsed"]["to"] == "gpu"

    def test_auto_mode_shifts_cpu_ward_on_capacity_loss(
        self, system, workload, expected
    ):
        plan = FaultPlan(gpu_memory_factor=0.01, description="gpu gone")
        with faults.injected(plan):
            run = CoProcessingJoin(system).run(workload)
        assert run.match == expected
        assert not run.uses_gpu
        assert run.notes["cpu_fraction"] == 1.0
        assert run.notes["split_plan"]["seconds_all_gpu"] == float("inf")

    def test_auto_mode_shifts_gpu_ward_on_cpu_death(
        self, system, workload, expected
    ):
        plan = FaultPlan(
            tasks=(TaskFault("cpu_*", transient=False),),
            description="CPU-side tasks die",
        )
        with faults.injected(plan):
            run = CoProcessingJoin(system).run(workload)
        assert run.match == expected
        assert run.uses_gpu
        assert run.notes["cpu_fraction"] == 0.0
        assert run.notes["split_plan"]["seconds_all_cpu"] == float("inf")

    def test_ladder_falls_through_when_both_sides_die(
        self, system, workload, expected
    ):
        # Kill the GPU join kernels AND the CPU-side join task: every
        # split fraction is infeasible, so the coprocess rung fails
        # with PlanError and the ladder falls through. Triton's
        # GPU-attributed failure then marks the GPU unhealthy, skipping
        # triton-spill and cpu-partitioned, and the join completes on
        # cpu-radix (whose join task is named "join" — neither pattern
        # matches it).
        plan = FaultPlan(
            tasks=(
                TaskFault("join[*]", transient=False),
                TaskFault("cpu_join", transient=False),
            ),
            description="both processors' join kernels die",
        )
        ladder = DegradationLadder(
            system, rungs=coprocess_rungs(), use_advisor=False
        )
        with faults.injected(plan):
            run = ladder.run(workload)
        assert run.match == expected
        assert run.notes["degradation"]["rung"] == "cpu-radix"
        assert "coprocess" in run.notes["degradation"]["failures"]

    def test_ladder_top_rung_survives_gpu_brownout(
        self, system, workload, expected
    ):
        # A transient storm the retry budget cannot absorb: the
        # coprocess rung itself completes by shifting every partition
        # CPU-ward — no degradation note, the top rung held.
        plan = FaultPlan(
            tasks=(TaskFault("join[*]", transient=True),),
            retry=RetryPolicy(max_attempts=2, backoff_s=1e-4),
            description="GPU join kernels never succeed",
        )
        ladder = DegradationLadder(
            system, rungs=coprocess_rungs(), use_advisor=False
        )
        with faults.injected(plan):
            run = ladder.run(workload)
        assert run.match == expected
        assert run.notes.get("degradation") is None
        assert not run.uses_gpu
        assert run.notes["cpu_fraction"] == 1.0


class TestSplitSearch:
    def test_endpoints_always_costed(self, system):
        plan = JoinAdvisor(system).recommend_split(128, 128)
        fractions = {e.cpu_fraction for e in plan.estimates}
        assert {0.0, 1.0} <= fractions
        assert plan.seconds <= plan.seconds_all_gpu
        assert plan.seconds <= plan.seconds_all_cpu

    def test_seeded_by_partition_ratio(self, system):
        plan = JoinAdvisor(system).recommend_split(512, 512)
        assert 0.0 < plan.seeded_fraction < 1.0
        assert any(
            e.cpu_fraction == pytest.approx(plan.seeded_fraction)
            for e in plan.estimates
        )

    def test_predicts_speedup_on_balanced_join(self, system):
        plan = JoinAdvisor(system).recommend_split(512, 512)
        assert plan.speedup_vs_best_single > 1.0
        assert 0.0 < plan.cpu_fraction < 1.0

    def test_rejects_bad_inputs(self, system):
        advisor = JoinAdvisor(system)
        with pytest.raises(ConfigurationError):
            advisor.recommend_split(0)
        with pytest.raises(ConfigurationError):
            advisor.recommend_split(128, tolerance=0.0)
        with pytest.raises(ConfigurationError):
            advisor.recommend_split(128, on_error="maybe")

    def test_search_converges_to_survivor_under_faults(self, system):
        plan_fault = FaultPlan(
            gpu_memory_factor=0.01, description="gpu gone"
        )
        with faults.injected(plan_fault):
            plan = JoinAdvisor(system).recommend_split(
                128, 128, on_error="skip"
            )
        assert plan.cpu_fraction == 1.0
        assert plan.seconds_all_gpu == float("inf")

    def test_plan_memoized_per_fault_plan(self, system):
        advisor = JoinAdvisor(system)
        before = run_cache.stats
        run_cache.enable()
        try:
            run_cache.clear()
            first = advisor.recommend_split(128, 128)
            assert run_cache.stats["plan_misses"] == before["plan_misses"] + 1
            second = advisor.recommend_split(128, 128)
            assert run_cache.stats["plan_hits"] == before["plan_hits"] + 1
            assert second == first
            # A different ambient fault plan must miss: a plan searched
            # under a brownout is never served to a healthy run.
            with faults.injected(
                FaultPlan(gpu_memory_factor=0.5, description="shrink")
            ):
                advisor.recommend_split(128, 128)
            assert run_cache.stats["plan_misses"] == before["plan_misses"] + 2
        finally:
            run_cache.disable()
            run_cache.clear()


class TestEstimateSkip:
    """estimate(on_error='skip') with a candidate dying mid-search."""

    class _Boom:
        def run(self, workload):
            raise CapacityError("state does not fit anywhere")

    def _advisor(self, system):
        return JoinAdvisor(
            system,
            candidates={
                "triton": lambda: TritonJoin(system),
                "boom": lambda: self._Boom(),
                "cpu_partitioned": lambda: CpuPartitionedJoin(system),
            },
        )

    def test_skip_drops_the_dead_candidate(self, system):
        estimates = self._advisor(system).estimate(128, 128, on_error="skip")
        assert {e.operator for e in estimates} == {
            "triton",
            "cpu_partitioned",
        }

    def test_raise_propagates(self, system):
        with pytest.raises(CapacityError):
            self._advisor(system).estimate(128, 128)


class TestSearchOptimality:
    """Hypothesis: the search lands within one step of the grid argmin."""

    @given(
        build_m=st.integers(min_value=64, max_value=1024),
        ratio=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=8, deadline=None)
    def test_within_one_step_of_empirical_argmin(self, build_m, ratio):
        from repro.hw.specs import ac922

        tolerance = 1.0 / 32.0
        advisor = JoinAdvisor(ac922())
        probe_m = build_m * ratio
        plan = advisor.recommend_split(
            build_m, probe_m, tolerance=tolerance
        )
        workload = generate_workload(
            build_m, probe_m, scale_divisor=_COSTING_DIVISOR
        )
        grid = np.arange(0.0, 1.0 + 1e-9, tolerance)
        costs = {
            float(f): advisor._cost_split(workload, float(f), "raise")
            for f in grid
        }
        argmin = min(costs, key=lambda f: (costs[f], f))
        assert abs(plan.cpu_fraction - argmin) <= 2 * tolerance + 1e-9
