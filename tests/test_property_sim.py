"""Property-based tests: simulator invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimEngine
from repro.sim.resources import Resource, ResourcePool
from repro.sim.tasks import Task, TaskGraph, chain

RESOURCES = ("link", "mem", "sm")


@st.composite
def task_graphs(draw):
    """Random DAGs of 1-8 tasks with forward-only dependencies."""
    n = draw(st.integers(min_value=1, max_value=8))
    tasks = []
    for i in range(n):
        demands = {}
        for resource in RESOURCES:
            if draw(st.booleans()):
                demands[resource] = draw(
                    st.floats(min_value=1.0, max_value=500.0)
                )
        if not demands:
            demands["link"] = 10.0
        task = Task(name=f"t{i}", demands=demands)
        # Forward-only edges keep the graph acyclic by construction.
        for j in range(i):
            if draw(st.booleans()) and draw(st.booleans()):
                task.after.append(tasks[j])
        tasks.append(task)
    return TaskGraph(tasks)


@pytest.fixture(scope="module")
def pool():
    return ResourcePool({r: Resource(r, 100.0) for r in RESOURCES})


def pool_():
    return ResourcePool({r: Resource(r, 100.0) for r in RESOURCES})


@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_makespan_at_least_critical_path_lower_bound(graph):
    """The makespan can never beat the per-resource serial bound along
    any dependency chain, nor the total-demand bound per resource."""
    result = SimEngine(pool_()).run(graph)
    for resource in RESOURCES:
        total = sum(t.demands.get(resource, 0.0) for t in graph.tasks)
        assert result.makespan_seconds >= total / 100.0 - 1e-6


@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_dependencies_respected(graph):
    result = SimEngine(pool_()).run(graph)
    assert result.makespan_seconds >= 0
    for task in graph.tasks:
        for dep in task.after:
            assert task.start_time >= dep.end_time - 1e-9


@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_busy_units_equal_total_demand(graph):
    """Resource accounting conserves work exactly."""
    result = SimEngine(pool_()).run(graph)
    for resource in RESOURCES:
        total = sum(t.demands.get(resource, 0.0) for t in graph.tasks)
        assert result.resource_busy_units[resource] == pytest.approx(
            total, rel=1e-6, abs=1e-6
        )


@given(task_graphs())
@settings(max_examples=30, deadline=None)
def test_simulation_is_deterministic(graph):
    engine = SimEngine(pool_())
    first = engine.run(graph)
    second = engine.run(graph)
    assert first.makespan_seconds == pytest.approx(second.makespan_seconds)
    assert [e.name for e in first.trace] == [e.name for e in second.trace]


@given(task_graphs())
@settings(max_examples=30, deadline=None)
def test_phase_breakdown_sums_to_makespan(graph):
    result = SimEngine(pool_()).run(graph)
    breakdown = result.phase_breakdown()
    assert sum(breakdown.seconds_by_phase.values()) == pytest.approx(
        result.makespan_seconds, rel=1e-6, abs=1e-9
    )


@given(
    st.lists(
        st.floats(min_value=1.0, max_value=200.0), min_size=1, max_size=6
    )
)
@settings(max_examples=40, deadline=None)
def test_serial_chain_is_sum_of_durations(demands):
    tasks = chain(
        [Task(name=f"t{i}", demands={"link": d}) for i, d in enumerate(demands)]
    )
    result = SimEngine(pool_()).run(TaskGraph(tasks))
    assert result.makespan_seconds == pytest.approx(sum(demands) / 100.0)


@given(
    st.lists(
        st.floats(min_value=1.0, max_value=200.0), min_size=1, max_size=6
    )
)
@settings(max_examples=40, deadline=None)
def test_parallel_tasks_bounded_by_capacity(demands):
    tasks = [Task(name=f"t{i}", demands={"link": d}) for i, d in enumerate(demands)]
    result = SimEngine(pool_()).run(TaskGraph(tasks))
    # Sharing one resource: the makespan is exactly total/capacity.
    assert result.makespan_seconds == pytest.approx(sum(demands) / 100.0)
