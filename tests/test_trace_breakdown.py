"""Edge cases of PhaseBreakdown's overlap-splitting and the TaskRecord/
OccupancyInterval artifacts the attribution engine consumes."""

from __future__ import annotations

import pytest

from repro import faults
from repro.data.generator import generate_workload
from repro.join import TritonJoin
from repro.sim.trace import (
    OccupancyInterval,
    PhaseBreakdown,
    TaskRecord,
    TraceEntry,
)


def _entry(name, phase, start, end):
    return TraceEntry(name=name, phase=phase, start=start, end=end)


class TestOverlapSplitting:
    def test_zero_length_tasks_contribute_nothing(self):
        # An instantaneous task (a scheduling point, a barrier) defines
        # a slice boundary but no time; the split must not divide by it
        # or attribute seconds to its phase.
        trace = [
            _entry("work", "Compute", 0.0, 2.0),
            _entry("barrier", "Sync", 1.0, 1.0),
        ]
        breakdown = PhaseBreakdown.from_trace(trace, makespan=2.0)
        assert breakdown.seconds_by_phase == {"Compute": 2.0}
        assert "Sync" not in breakdown.seconds_by_phase

    def test_only_zero_length_tasks(self):
        trace = [_entry("a", "P", 1.0, 1.0), _entry("b", "Q", 1.0, 1.0)]
        breakdown = PhaseBreakdown.from_trace(trace, makespan=1.0)
        assert breakdown.seconds_by_phase == {}
        assert breakdown.fraction("P") == 0.0

    def test_fully_nested_span_splits_the_inner_window(self):
        # outer spans [0, 4]; inner phase [1, 3] fully inside it. Both
        # are active over [1, 3], so each gets half of that window.
        trace = [
            _entry("outer", "Outer", 0.0, 4.0),
            _entry("inner", "Inner", 1.0, 3.0),
        ]
        breakdown = PhaseBreakdown.from_trace(trace, makespan=4.0)
        assert breakdown.seconds_by_phase["Outer"] == pytest.approx(3.0)
        assert breakdown.seconds_by_phase["Inner"] == pytest.approx(1.0)
        assert sum(breakdown.seconds_by_phase.values()) == pytest.approx(4.0)

    def test_identical_spans_same_phase_pool_their_share(self):
        trace = [
            _entry("a", "P", 0.0, 2.0),
            _entry("b", "P", 0.0, 2.0),
        ]
        breakdown = PhaseBreakdown.from_trace(trace, makespan=2.0)
        assert breakdown.seconds_by_phase == {"P": 2.0}

    def test_identical_spans_distinct_phases_split_evenly(self):
        trace = [
            _entry("a", "P", 0.0, 2.0),
            _entry("b", "Q", 0.0, 2.0),
        ]
        breakdown = PhaseBreakdown.from_trace(trace, makespan=2.0)
        assert breakdown.seconds_by_phase["P"] == pytest.approx(1.0)
        assert breakdown.seconds_by_phase["Q"] == pytest.approx(1.0)

    def test_faulted_retry_entries_keep_the_sum_exact(self, system):
        # A faulted run's trace carries failed-attempt entries that
        # overlap the successful attempt's span; the split must still
        # attribute every slice exactly once.
        plan = faults.FaultPlan(
            seed=3,
            tasks=(
                faults.TaskFault(
                    match="join[*]", probability=1.0, max_failures=2
                ),
            ),
            retry=faults.RetryPolicy(),
        )
        workload = generate_workload(128, 128, scale_divisor=65536)
        faults.activate(plan)
        try:
            run = TritonJoin(system).run(workload)
        finally:
            faults.deactivate()
        assert any("failed" in e.name for e in run.sim.trace)
        breakdown = PhaseBreakdown.from_trace(
            list(run.sim.trace), run.sim.makespan_seconds
        )
        covered = sum(breakdown.seconds_by_phase.values())
        # Slices are attributed once each; idle gaps (retry backoff
        # with nothing running) are legitimately unattributed.
        assert covered <= run.sim.makespan_seconds + 1e-9
        assert covered > 0
        assert sum(breakdown.percentages().values()) == pytest.approx(100.0)

    def test_empty_trace(self):
        breakdown = PhaseBreakdown.from_trace([], makespan=0.0)
        assert breakdown.seconds_by_phase == {}
        assert breakdown.percentages() == {}


class TestTaskRecord:
    def test_span_includes_backoff(self):
        record = TaskRecord(
            task_id=1, name="j", phase="Join", start=0.0, end=2.0,
            retries=2, backoff_seconds=0.5, active_seconds=1.5,
        )
        assert record.span_seconds == pytest.approx(2.0)
        assert record.backoff_seconds + record.active_seconds <= (
            record.span_seconds + 1e-12
        )

    def test_round_trip(self):
        record = TaskRecord(
            task_id=3, name="t", phase="P", start=0.5, end=1.5,
            demands={"gpu_sm": 2.0}, dep_ids=(1, 2), min_seconds=0.1,
            retries=1, backoff_seconds=0.05, active_seconds=0.9,
        )
        assert TaskRecord.from_dict(record.to_dict()) == record

    def test_hashable_despite_dict_field(self):
        record = TaskRecord(
            task_id=1, name="t", phase="P", start=0.0, end=1.0,
            demands={"r": 1.0},
        )
        assert len({record, record}) == 1


class TestOccupancyInterval:
    def test_round_trip_and_duration(self):
        interval = OccupancyInterval(
            start=1.0, end=2.5, usage={"nvlink_to_gpu": 50e9}
        )
        assert interval.duration == pytest.approx(1.5)
        assert OccupancyInterval.from_dict(interval.to_dict()) == interval

    def test_engine_occupancy_integrates_to_busy_units(self, system):
        workload = generate_workload(128, 128, scale_divisor=65536)
        run = TritonJoin(system).run(workload)
        sim = run.sim
        for name in sim.resource_capacities:
            integral = sum(
                interval.usage.get(name, 0.0) * interval.duration
                for interval in sim.occupancy
            )
            assert integral == pytest.approx(
                sim.resource_busy_units.get(name, 0.0), rel=1e-9, abs=1e-9
            )

    def test_occupancy_tiles_without_overlap(self, system):
        workload = generate_workload(128, 128, scale_divisor=65536)
        sim = TritonJoin(system).run(workload).sim
        for earlier, later in zip(sim.occupancy, sim.occupancy[1:]):
            assert later.start >= earlier.end - 1e-12
        assert sim.occupancy[-1].end <= sim.makespan_seconds + 1e-12
