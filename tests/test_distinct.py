"""Unit tests for duplicate elimination (repro.aggregate.distinct)."""

import numpy as np
import pytest

from repro.aggregate import (
    NoPartitioningDistinct,
    TritonDistinct,
    reference_distinct,
)
from repro.data.relation import Relation


def make_relation(rows=30_000, distinct=700, seed=5, nominal=None):
    rng = np.random.default_rng(seed)
    keys = rng.integers(1, distinct + 1, size=rows).astype(np.int64)
    return Relation(keys, {"attr0": keys}, nominal_rows=nominal)


class TestReferenceDistinct:
    def test_counts_unique_keys(self):
        relation = Relation(np.array([3, 1, 3, 2, 1], dtype=np.int64))
        result = reference_distinct(relation)
        assert result.distinct == 3
        assert result.key_checksum == 6

    def test_all_unique(self):
        relation = Relation(np.arange(1, 101, dtype=np.int64))
        assert reference_distinct(relation).distinct == 100


class TestOperators:
    def test_triton_matches_reference(self, system):
        relation = make_relation()
        expected = reference_distinct(relation)
        result, run = TritonDistinct(system).distinct(relation, 700)
        assert result == expected
        assert run.seconds > 0

    def test_np_matches_reference(self, system):
        relation = make_relation(seed=8)
        expected = reference_distinct(relation)
        result, _ = NoPartitioningDistinct(system).distinct(relation, 700)
        assert result == expected

    def test_operators_agree(self, system):
        relation = make_relation(seed=12)
        a, _ = TritonDistinct(system).distinct(relation, 700)
        b, _ = NoPartitioningDistinct(system).distinct(relation, 700)
        assert a == b

    def test_partitioned_wins_with_many_distinct_values(self, system):
        # Same crossover as aggregation: huge distinct counts blow the
        # global table out of GPU memory.
        relation = make_relation(nominal=2_048_000_000)
        distinct_nominal = 4_000_000_000
        _, triton = TritonDistinct(system).distinct(relation, distinct_nominal)
        _, baseline = NoPartitioningDistinct(system).distinct(
            relation, distinct_nominal
        )
        assert triton.seconds < baseline.seconds

    def test_single_value_relation(self, system):
        relation = Relation(np.full(1000, 7, dtype=np.int64))
        result, _ = TritonDistinct(system).distinct(relation, 1)
        assert result.distinct == 1
        assert result.key_checksum == 7
