"""Unit tests for join plumbing (repro.join.base, repro.join.caching)."""

import numpy as np
import pytest

from repro.data.generator import generate_workload
from repro.data.relation import Relation
from repro.errors import ConfigurationError
from repro.hw.tlb import MemSpace
from repro.join import CachePolicy, plan_cache, reference_join
from repro.join.base import (
    JoinMatch,
    build_payload_column,
    nominal_matches,
    result_bytes,
    split_gpu_cpu,
)
from repro.join.caching import PIPELINE_RESERVED_BYTES, CachePlan
from repro.units import GIB, gib


class TestJoinMatch:
    def test_from_arrays(self):
        keys = np.array([1, 2, 3], dtype=np.int64)
        payloads = np.array([10, 20, 30], dtype=np.int64)
        match = JoinMatch.from_arrays(keys, payloads)
        assert match.matches == 3
        assert match.key_checksum == 6
        assert match.payload_checksum == 60

    def test_equality(self):
        a = JoinMatch(1, 2, 3)
        b = JoinMatch(1, 2, 3)
        assert a == b
        assert a != JoinMatch(1, 2, 4)

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        match = JoinMatch.from_arrays(empty, empty)
        assert match.matches == 0


class TestReferenceJoin:
    def test_pk_fk_matches_all_probes(self, small_workload):
        match = reference_join(small_workload.build, small_workload.probe)
        assert match.matches == len(small_workload.probe)

    def test_partial_matches(self):
        build = Relation(
            np.array([1, 2, 3], dtype=np.int64),
            {"attr0": np.array([10, 20, 30], dtype=np.int64)},
        )
        probe = Relation(np.array([2, 9, 3, 9], dtype=np.int64))
        match = reference_join(build, probe)
        assert match.matches == 2
        assert match.payload_checksum == 50

    def test_no_matches(self):
        build = Relation(np.array([1], dtype=np.int64))
        probe = Relation(np.array([5, 6], dtype=np.int64))
        assert reference_join(build, probe).matches == 0


class TestHelpers:
    def test_result_bytes(self):
        assert result_bytes(100) == 1600

    def test_nominal_matches_is_probe_side(self):
        workload = generate_workload(1, 2, scale_divisor=1)
        assert nominal_matches(workload) == 2_000_000

    def test_split_gpu_cpu(self):
        assert split_gpu_cpu(100, 0.25) == (25, 75)

    def test_split_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            split_gpu_cpu(1, 1.5)

    def test_payload_column_falls_back_to_keys(self):
        relation = Relation(np.array([5, 6], dtype=np.int64))
        assert np.array_equal(build_payload_column(relation), relation.keys)


class TestCachePlan:
    def test_default_takes_all_available(self):
        plan = plan_cache(gib(61), 16 * GIB)
        assert plan.cache_bytes == pytest.approx(
            16 * GIB - PIPELINE_RESERVED_BYTES
        )
        assert 0 < plan.gpu_fraction < 0.3

    def test_small_state_fully_cached(self):
        plan = plan_cache(gib(4), 16 * GIB)
        assert plan.gpu_fraction == 1.0
        assert plan.spilled_fraction == 0.0

    def test_explicit_cache_clamped(self):
        plan = plan_cache(gib(61), 16 * GIB, cache_bytes=gib(100))
        assert plan.cache_bytes <= 16 * GIB - PIPELINE_RESERVED_BYTES

    def test_none_policy_disables_cache(self):
        plan = plan_cache(gib(4), 16 * GIB, policy=CachePolicy.NONE)
        assert plan.cache_bytes == 0.0
        assert plan.gpu_fraction == 0.0

    def test_mapping_matches_fractions(self):
        plan = plan_cache(gib(6), 16 * GIB, cache_bytes=gib(2))
        mapping = plan.mapping()
        assert mapping.gpu_fraction == pytest.approx(plan.gpu_fraction, abs=0.01)

    def test_overlap_fraction_by_policy(self):
        even = CachePlan(100.0, 50.0, CachePolicy.EVEN_INTERLEAVED)
        r0 = CachePlan(100.0, 50.0, CachePolicy.HYBRID_HASH_R0)
        assert even.overlap_fraction() == 1.0
        assert r0.overlap_fraction() == 0.0

    def test_rejects_negative_cache(self):
        with pytest.raises(ConfigurationError):
            plan_cache(gib(1), 16 * GIB, cache_bytes=-1.0)
