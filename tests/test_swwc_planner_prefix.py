"""Unit tests for the CPU SWWC partitioner, the radix planner, and
prefix sums."""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.errors import ConfigurationError, PlanError
from repro.hw.cpu import CpuModel
from repro.hw.gpu import GpuModel
from repro.partition.planner import RadixPlan, plan_radix_join
from repro.partition.prefix_sum import (
    PrefixSumLocation,
    exclusive_scan,
    prefix_sum_task,
)
from repro.partition.swwc import CpuSwwcPartitioner
from repro.sim.kernels import CpuTaskBuilder, GpuKernelBuilder
from repro.units import GIB, M_TUPLES


@pytest.fixture
def p9(cpu_model):
    return CpuSwwcPartitioner(cpu_model)


@pytest.fixture
def xeon_swwc(xeon):
    return CpuSwwcPartitioner(CpuModel(xeon.cpu))


class TestCpuSwwc:
    def test_functional_partitioning(self, p9):
        keys = np.random.default_rng(2).permutation(5000).astype(np.int64) + 1
        parts = p9.partition(Relation(keys), bits=4)
        assert parts.offsets[-1] == 5000

    def test_power9_single_pass_at_14_bits(self, p9):
        assert p9.passes_needed(1 << 14) == 1

    def test_xeon_two_passes_at_14_bits(self, xeon_swwc):
        assert xeon_swwc.passes_needed(1 << 14) == 2

    def test_pass_fanouts_cover_total(self, xeon_swwc):
        fanouts = xeon_swwc.pass_fanouts(1 << 14)
        assert len(fanouts) == 2
        assert fanouts[0] * fanouts[1] >= 1 << 14

    def test_two_passes_double_memory_traffic(self, xeon_swwc):
        one = xeon_swwc.work(1e9, 16, 1 << 13)
        two = xeon_swwc.work(1e9, 16, 1 << 14)
        assert two.read_bytes == pytest.approx(2 * one.read_bytes)

    def test_rfo_write_amplification(self, p9, cpu_model):
        # POWER lacks non-temporal stores: writes cost 2x (read for
        # ownership + write back).
        without_nt = p9.work(1e6, 16, 1024)
        with_nt = CpuSwwcPartitioner(cpu_model, non_temporal_stores=True).work(
            1e6, 16, 1024
        )
        assert without_nt.write_bytes == pytest.approx(2 * with_nt.write_bytes)

    def test_tlb_term_raises_ops_at_high_fanout(self, p9):
        low = p9.ops_per_tuple(1 << 12, 16)
        high = p9.ops_per_tuple(1 << 14, 16)
        assert high > low

    def test_throughput_near_2_g_tuples(self, p9):
        # Calibration target: one POWER9 socket partitions ~2 G tuples/s
        # (Fig. 4 / section 3.1's rate argument).
        rate = p9.throughput_tuples_per_s(1e9, 16, 512)
        assert 1.5e9 < rate < 2.5e9

    def test_rejects_negative_tuples(self, p9):
        with pytest.raises(ConfigurationError):
            p9.work(-1, 16, 64)


class TestPlanner:
    def test_paper_plans(self, system):
        # The paper's configuration: 6-10 bits pass 1, 9 bits pass 2.
        for m_tuples, expected_b1 in ((128, 6), (512, 8), (2048, 10)):
            plan = plan_radix_join(
                m_tuples * M_TUPLES, m_tuples * M_TUPLES, 16, system
            )
            assert plan.bits1 == expected_b1
            assert plan.bits2 == 9
            assert plan.passes == 2

    def test_final_partitions_fit_scratchpad(self, system):
        plan = plan_radix_join(2048 * M_TUPLES, 2048 * M_TUPLES, 16, system)
        per_partition = 2048 * M_TUPLES * 16 / plan.total_fanout
        assert per_partition <= system.gpu.usable_scratchpad_bytes

    def test_single_pass_mode(self, system):
        plan = plan_radix_join(
            2048 * M_TUPLES, 2048 * M_TUPLES, 16, system, single_pass=True
        )
        assert plan.passes == 1

    def test_small_workload_min_bits(self, system):
        plan = plan_radix_join(1 * M_TUPLES, 1 * M_TUPLES, 16, system)
        assert plan.bits1 >= 6 or plan.passes == 1

    def test_wide_tuples_need_more_partitions(self, system):
        narrow = plan_radix_join(512 * M_TUPLES, 512 * M_TUPLES, 16, system)
        wide = plan_radix_join(512 * M_TUPLES, 512 * M_TUPLES, 136, system)
        assert wide.total_bits > narrow.total_bits

    def test_plan_properties(self):
        plan = RadixPlan(bits_per_pass=[8, 9])
        assert plan.fanout1 == 256
        assert plan.total_fanout == 1 << 17
        assert plan.final_partition_rows(1 << 20) == pytest.approx(8.0)

    def test_rejects_bad_cardinality(self, system):
        with pytest.raises(PlanError):
            plan_radix_join(0, 1, 16, system)


class TestPrefixSum:
    def test_exclusive_scan(self):
        offsets = exclusive_scan(np.array([3, 0, 5]))
        assert list(offsets) == [0, 3, 3, 8]

    def test_scan_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            exclusive_scan(np.zeros((2, 2)))

    def test_cpu_task_memory_bound(self, system):
        # The CPU prefix sum must stream at ~130 GiB/s (Fig. 20b).
        builder = CpuTaskBuilder(CpuModel(system.cpu))
        tuples = 4096e6
        task = prefix_sum_task(tuples, PrefixSumLocation.CPU, builder)
        rate = tuples * 8 / task.standalone_seconds() / GIB
        assert 120 < rate < 135

    def test_gpu_task_link_bound(self, system):
        builder = GpuKernelBuilder(GpuModel(system))
        tuples = 4096e6
        task = prefix_sum_task(tuples, PrefixSumLocation.GPU, builder)
        rate = tuples * 8 / task.standalone_seconds() / GIB
        assert 60 < rate < 65

    def test_builder_type_checked(self, system):
        builder = CpuTaskBuilder(CpuModel(system.cpu))
        with pytest.raises(ConfigurationError):
            prefix_sum_task(1e6, PrefixSumLocation.GPU, builder)
