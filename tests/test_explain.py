"""Unit tests for repro.explain: attribution invariants, fig14
cross-checks, fault-aware critical paths, run diffs, and the CLI hooks."""

from __future__ import annotations

import json

import pytest

from repro import explain, faults, telemetry
from repro.bench.__main__ import _worker, main as cli_main
from repro.data.generator import generate_workload
from repro.explain.bounds import classify, resource_class
from repro.explain.critical_path import critical_path, slack_by_task
from repro.explain.timeline import utilization_timeline
from repro.join import NoPartitioningJoin, TritonJoin
from repro.sim.trace import TaskRecord, TraceEntry


@pytest.fixture(autouse=True)
def clean_state():
    telemetry.disable()
    telemetry.reset()
    explain.disable_collection()
    explain.drain()
    yield
    telemetry.disable()
    telemetry.reset()
    explain.disable_collection()
    explain.drain()
    faults.deactivate()


@pytest.fixture(scope="module")
def workload():
    return generate_workload(128, 128, scale_divisor=65536)


@pytest.fixture(scope="module")
def triton_run(system, workload):
    return TritonJoin(system).run(workload)


@pytest.fixture(scope="module")
def explained(triton_run):
    return explain.explain(triton_run.sim, label="triton")


RETRY_PLAN = faults.FaultPlan(
    seed=7,
    tasks=(
        faults.TaskFault(match="join[*]", probability=1.0, max_failures=2),
    ),
    retry=faults.RetryPolicy(),
)


class TestInvariants:
    def test_verify_is_clean(self, explained):
        assert explained.verify() == []

    def test_critical_path_attributes_makespan_exactly(self, explained):
        # The path's waits + spans telescope over [0, makespan]: the
        # acceptance gate is exact equality, not approximation.
        assert (
            explained.critical_path_seconds == explained.makespan_seconds
        )

    def test_bound_seconds_sum_to_makespan(self, explained):
        total = sum(explained.seconds_by_bound.values())
        assert total == pytest.approx(
            explained.makespan_seconds, abs=1e-9 * explained.makespan_seconds
        )

    def test_timeline_covers_makespan_contiguously(self, explained):
        for name, segments in explained.timeline.items():
            assert segments[0][0] == 0.0
            assert segments[-1][1] == pytest.approx(
                explained.makespan_seconds
            )
            for (_, prev_end, _), (start, _, _) in zip(
                segments, segments[1:]
            ):
                assert start == prev_end

    def test_critical_tasks_have_zero_slack(self, explained):
        for step in explained.critical_path:
            slack = explained.slack_seconds[step.record.name]
            assert slack == pytest.approx(0.0, abs=1e-9)

    def test_all_slack_non_negative(self, explained):
        assert all(s >= -1e-12 for s in explained.slack_seconds.values())


class TestFig14CrossCheck:
    def test_interconnect_utilization_matches_fig14(self, triton_run):
        # The acceptance criterion: the explain-derived utilization
        # reproduces the fig14 table's value from the same single run.
        ex = explain.explain(triton_run.sim)
        assert ex.interconnect_utilization_75 == pytest.approx(
            triton_run.interconnect_utilization, rel=1e-12
        )

    def test_average_utilization_matches_engine_integrals(self, triton_run):
        # The timeline integrates the same draws the engine accumulates
        # into resource_busy_units; both views must agree.
        sim = triton_run.sim
        ex = explain.explain(sim)
        for name, capacity in sim.resource_capacities.items():
            expected = (
                sim.resource_busy_units.get(name, 0.0)
                / capacity
                / sim.makespan_seconds
            )
            assert ex.average_utilization[name] == pytest.approx(
                expected, abs=1e-9
            )

    def test_utilization_within_unit_interval(self, explained):
        for name, value in explained.average_utilization.items():
            assert 0.0 <= value <= 1.0 + 1e-9


class TestCriticalPath:
    def test_path_is_dependency_connected(self, triton_run):
        ex = explain.explain(triton_run.sim)
        for earlier, later in zip(ex.critical_path, ex.critical_path[1:]):
            assert (
                earlier.record.task_id in later.record.dep_ids
                or later.wait_seconds >= 0
            )

    def test_path_ends_at_makespan(self, explained):
        assert explained.critical_path[-1].record.end == pytest.approx(
            explained.makespan_seconds
        )

    def test_empty_records_empty_path(self):
        assert critical_path([]) == []

    def test_fallback_from_bare_trace(self):
        class Bare:
            trace = [
                TraceEntry(name="a", phase="P", start=0.0, end=1.0),
                TraceEntry(name="b", phase="P", start=1.0, end=3.0),
            ]
            makespan_seconds = 3.0

        ex = explain.explain(Bare())
        assert ex.verify() == []
        assert ex.critical_path[-1].record.name == "b"
        assert ex.critical_path_seconds == pytest.approx(3.0)

    def test_slack_of_sink_is_makespan_minus_end(self):
        records = [
            TaskRecord(task_id=1, name="long", phase="P", start=0.0, end=4.0),
            TaskRecord(task_id=2, name="short", phase="P", start=0.0, end=1.0),
        ]
        slack = slack_by_task(records, 4.0)
        assert slack[1] == pytest.approx(0.0)
        assert slack[2] == pytest.approx(3.0)


class TestBoundClassification:
    def test_resource_classes(self):
        assert resource_class("nvlink_to_gpu") == "transfer"
        assert resource_class("iommu_walks") == "translation"
        assert resource_class("gpu_sm") == "compute"
        assert resource_class("cpu_mem_bw") == "memory"

    def test_dominant_resource_wins(self):
        record = TaskRecord(
            task_id=1, name="t", phase="P", start=0.0, end=1.0,
            demands={"nvlink_to_gpu": 50e9, "gpu_sm": 1.0},
        )
        bound = classify(record, {"nvlink_to_gpu": 63e9, "gpu_sm": 80.0})
        assert bound.bound == "transfer-bound"
        assert bound.resource == "nvlink_to_gpu"

    def test_latency_bound_without_demands(self):
        record = TaskRecord(
            task_id=1, name="t", phase="P", start=0.0, end=0.1,
            min_seconds=0.1,
        )
        assert classify(record, {}).bound == "latency-bound"

    def test_triton_run_is_transfer_bound(self, explained):
        # The paper's headline: the Triton join saturates the
        # interconnect, so transfers dominate the makespan.
        assert explained.dominant_bound() == "transfer-bound"


class TestFaultedRuns:
    def test_retries_appear_as_dependency_wait(self, system, workload):
        faults.activate(RETRY_PLAN)
        try:
            run = TritonJoin(system).run(workload)
        finally:
            faults.deactivate()
        ex = explain.explain(run.sim, label="faulted")
        assert ex.verify() == []
        assert ex.retries > 0
        retried = [s for s in ex.critical_path if s.record.retries]
        assert retried, "retried joins should sit on the critical path"
        assert all(s.record.backoff_seconds > 0 for s in retried)
        # Backoff is surfaced as waiting time on the path.
        assert ex.critical_wait_seconds > 0
        report = ex.format()
        assert "dependency-wait" in report

    def test_faulted_invariants_still_hold(self, system, workload):
        faults.activate(RETRY_PLAN)
        try:
            run = TritonJoin(system).run(workload)
        finally:
            faults.deactivate()
        ex = explain.explain(run.sim)
        assert ex.critical_path_seconds == ex.makespan_seconds
        assert sum(ex.seconds_by_bound.values()) == pytest.approx(
            ex.makespan_seconds, abs=1e-9 * ex.makespan_seconds
        )


class TestRunDiff:
    def test_bandwidth_fault_names_task_and_resource(self, system, workload):
        # The acceptance criterion: a known injected slowdown must be
        # attributed to the slowed task and its bounding resource.
        clean = NoPartitioningJoin(system).run(workload)
        plan = faults.FaultPlan(
            seed=1,
            bandwidth=(
                faults.BandwidthFault(resource="nvlink_to_gpu", factor=0.5),
            ),
        )
        faults.activate(plan)
        try:
            slowed = NoPartitioningJoin(system).run(workload)
        finally:
            faults.deactivate()
        diff = explain.diff_runs(
            explain.explain(clean.sim, label="clean"),
            explain.explain(slowed.sim, label="slowed"),
        )
        assert diff.regression
        assert diff.makespan_delta > 0
        top = diff.task_deltas[0]
        assert top.delta_seconds > 0
        assert top.bound == "transfer-bound"
        assert top.resource == "nvlink_to_gpu"
        text = " ".join(diff.drivers)
        assert top.name in text
        assert "nvlink_to_gpu" in text

    def test_self_diff_is_neutral(self, explained):
        diff = explain.diff_runs(explained, explained)
        assert diff.makespan_delta == 0.0
        assert not diff.regression
        assert all(d.delta_seconds == 0 for d in diff.task_deltas)

    def test_diff_serializes(self, explained):
        diff = explain.diff_runs(explained, explained)
        doc = json.loads(json.dumps(diff.to_dict()))
        assert doc["makespan_delta"] == 0.0


class TestSerialization:
    def test_round_trip_preserves_everything(self, explained):
        restored = explain.ExplainedRun.from_dict(
            json.loads(json.dumps(explained.to_dict()))
        )
        assert restored.makespan_seconds == explained.makespan_seconds
        assert restored.verify() == []
        assert restored.critical_path_seconds == pytest.approx(
            explained.critical_path_seconds
        )
        assert restored.seconds_by_bound == pytest.approx(
            explained.seconds_by_bound
        )
        assert restored.average_utilization == pytest.approx(
            explained.average_utilization
        )
        assert [s.record.name for s in restored.critical_path] == [
            s.record.name for s in explained.critical_path
        ]

    def test_format_renders(self, explained):
        report = explained.format()
        assert "critical path" in report
        assert "bound classes" in report
        assert "fig14-style" in report


class TestCollection:
    def test_engine_collects_when_enabled(self, system, workload):
        explain.enable_collection()
        TritonJoin(system).run(workload)
        collected = explain.drain()
        assert len(collected) == 1
        assert collected[0].verify() == []

    def test_engine_ignores_when_disabled(self, system, workload):
        TritonJoin(system).run(workload)
        assert explain.drain() == []

    def test_labels_come_from_spans(self, system, workload):
        telemetry.enable()
        explain.enable_collection()
        TritonJoin(system).run(workload)
        (run,) = explain.drain()
        assert "run:GPU Triton Join" in run.label


class TestBenchCli:
    def test_explain_flag_writes_document(self, tmp_path):
        out = tmp_path / "explain.json"
        code = cli_main(
            [
                "fig14",
                "--sizes", "128",
                "--divisor", "1048576",
                "--explain", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        runs = doc["experiments"]["fig14"]
        assert len(runs) >= 3
        for run_dict in runs:
            restored = explain.ExplainedRun.from_dict(run_dict)
            assert restored.verify() == []
            assert restored.label.startswith("experiment:fig14")

    def test_explain_flag_prints_summary(self, tmp_path, capsys):
        cli_main(
            [
                "fig14",
                "--sizes", "128",
                "--divisor", "1048576",
                "--explain", str(tmp_path / "e.json"),
            ]
        )
        assert "[explain: " in capsys.readouterr().out

    def test_cli_leaves_collection_disabled(self, tmp_path):
        cli_main(
            [
                "fig14",
                "--sizes", "128",
                "--divisor", "1048576",
                "--explain", str(tmp_path / "e.json"),
            ]
        )
        assert not explain.collecting()
        assert explain.drain() == []

    def test_worker_returns_explanations(self):
        # The process-pool entry point, exercised in-process: the
        # parent's merge path consumes exactly this tuple shape.
        name, _, _, _, _, explanations, _ = _worker(
            "fig14", (128,), 1048576.0, False, False, None, True
        )
        assert name == "fig14"
        assert explanations
        for run_dict in explanations:
            assert explain.ExplainedRun.from_dict(run_dict).verify() == []

    def test_faulted_cli_run_keeps_invariants(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(RETRY_PLAN.to_dict()))
        out = tmp_path / "explain.json"
        code = cli_main(
            [
                "fig14",
                "--sizes", "128",
                "--divisor", "1048576",
                "--faults", str(plan_path),
                "--explain", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        runs = [
            explain.ExplainedRun.from_dict(r)
            for r in doc["experiments"]["fig14"]
        ]
        assert all(r.verify() == [] for r in runs)


class TestUtilizationTimeline:
    def test_gaps_become_zero_segments(self):
        class Gappy:
            makespan_seconds = 3.0
            resource_capacities = {"r": 10.0}

            class _I:
                def __init__(self, start, end, usage):
                    self.start, self.end, self.usage = start, end, usage

            occupancy = (
                _I(0.0, 1.0, {"r": 5.0}),
                _I(2.0, 3.0, {"r": 10.0}),
            )

        timeline = utilization_timeline(Gappy())
        assert timeline["r"] == [
            (0.0, 1.0, 0.5),
            (1.0, 2.0, 0.0),
            (2.0, 3.0, 1.0),
        ]

    def test_empty_occupancy_is_all_zero(self):
        class Idle:
            makespan_seconds = 2.0
            resource_capacities = {"r": 1.0}
            occupancy = ()

        timeline = utilization_timeline(Idle())
        assert timeline["r"] == [(0.0, 2.0, 0.0)]
