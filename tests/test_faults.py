"""Unit tests for the fault-injection subsystem (:mod:`repro.faults`)."""

import math

import pytest

from repro import faults, telemetry
from repro.errors import ConfigurationError, TaskFailedError
from repro.faults import (
    BandwidthFault,
    FaultPlan,
    RetryPolicy,
    TaskFault,
    _name_match,
    _uniform,
)
from repro.sim.engine import SimEngine
from repro.sim.resources import Resource, ResourcePool
from repro.sim.tasks import Task, TaskGraph, chain


def pool_():
    return ResourcePool(
        {name: Resource(name, 100.0) for name in ("link", "mem", "sm")}
    )


class TestNameMatch:
    def test_star_matches_everything(self):
        assert _name_match("anything[3]@1", "*")

    def test_literal_brackets_are_not_character_classes(self):
        # fnmatch would read "[*]" as a class; task names carry literal
        # brackets, so only "*" may be special.
        assert _name_match("join[0]", "join[*]")
        assert _name_match("join[17]", "join[*]")
        assert not _name_match("join0", "join[*]")
        assert not _name_match("j", "[j]")

    def test_prefix_and_suffix_patterns(self):
        assert _name_match("nvlink_to_gpu", "nvlink_*")
        assert _name_match("nvlink_to_gpu[1]", "nvlink_*")
        assert not _name_match("xbus", "nvlink_*")
        assert _name_match("join[2]@1", "*@1")
        assert not _name_match("join[2]@0", "*@1")

    def test_exact_match_without_wildcard(self):
        assert _name_match("xbus", "xbus")
        assert not _name_match("xbus2", "xbus")


class TestUniformDraw:
    def test_deterministic_and_in_unit_interval(self):
        draw = _uniform(0, "join[0]", 0, 0)
        assert draw == _uniform(0, "join[0]", 0, 0)
        assert 0.0 <= draw < 1.0

    def test_varies_with_every_key_component(self):
        base = _uniform(0, "join[0]", 0, 0)
        assert base != _uniform(1, "join[0]", 0, 0)
        assert base != _uniform(0, "join[1]", 0, 0)
        assert base != _uniform(0, "join[0]", 1, 0)
        assert base != _uniform(0, "join[0]", 0, 1)


class TestBandwidthFault:
    def test_rejects_bad_factor_and_window(self):
        with pytest.raises(ConfigurationError):
            BandwidthFault("link", 0.0)
        with pytest.raises(ConfigurationError):
            BandwidthFault("link", 1.5)
        with pytest.raises(ConfigurationError):
            BandwidthFault("link", 0.5, start_s=2.0, end_s=1.0)

    def test_applies_respects_window_and_pattern(self):
        fault = BandwidthFault("nvlink_*", 0.5, start_s=1.0, end_s=2.0)
        assert fault.applies("nvlink_to_gpu", 1.0)
        assert fault.applies("nvlink_to_cpu", 1.5)
        assert not fault.applies("nvlink_to_gpu", 0.5)
        assert not fault.applies("nvlink_to_gpu", 2.0)  # end exclusive
        assert not fault.applies("cpu_mem_bw", 1.5)


class TestTaskFault:
    def test_rejects_bad_probability_and_cap(self):
        with pytest.raises(ConfigurationError):
            TaskFault("join[*]", probability=0.0)
        with pytest.raises(ConfigurationError):
            TaskFault("join[*]", max_failures=0)

    def test_max_failures_caps_firing(self):
        fault = TaskFault("join[*]", probability=1.0, max_failures=2)
        assert fault.fires(0, "join[0]", "Join", 0, 0)
        assert fault.fires(0, "join[0]", "Join", 1, 0)
        assert not fault.fires(0, "join[0]", "Join", 2, 0)

    def test_phase_filter(self):
        fault = TaskFault("*", phase="Join")
        assert fault.fires(0, "join[0]", "Join", 0, 0)
        assert not fault.fires(0, "part1", "Part 1", 0, 0)

    def test_failure_sets_are_nested_in_probability(self):
        # The same deterministic draw backs every probability, so a
        # higher rate can only add failures — the monotone-curve basis.
        lo = TaskFault("t*", probability=0.2)
        hi = TaskFault("t*", probability=0.6)
        for i in range(200):
            if lo.fires(7, f"t{i}", "", 0, 0):
                assert hi.fires(7, f"t{i}", "", 0, 0)

    def test_probability_one_always_fires(self):
        fault = TaskFault("t", probability=1.0)
        assert all(fault.fires(s, "t", "", 0, 0) for s in range(20))


class TestRetryPolicy:
    def test_backoff_grows_then_saturates(self):
        policy = RetryPolicy(backoff_s=1.0, multiplier=2.0, max_backoff_s=3.0)
        assert policy.backoff(0) == 1.0
        assert policy.backoff(1) == 2.0
        assert policy.backoff(2) == 3.0  # capped, not 4.0
        assert policy.backoff(10) == 3.0

    def test_class_budgets_are_pattern_matched(self):
        policy = RetryPolicy(
            class_budgets=(("Join", 2), ("Part *", 0)),
            default_class_budget=5,
        )
        assert policy.budget_for("Join") == 2
        assert policy.budget_for("Part 1") == 0
        assert policy.budget_for("Part 2") == 0
        assert policy.budget_for("PS 1") == 5

    def test_unlimited_by_default(self):
        assert RetryPolicy().budget_for("anything") is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_s=-1.0)


class TestFaultPlan:
    def test_empty_plan_queries(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert not plan.affects_engine()
        assert plan.bandwidth_factor("link", 0.0) == 1.0
        assert plan.boundaries() == ()
        assert plan.next_boundary(0.0) is None
        assert plan.task_fault("join[0]", "Join", 0) is None
        assert plan.summary() == "empty fault plan"

    def test_capacity_only_plan_skips_the_engine(self):
        plan = FaultPlan(gpu_memory_factor=0.5)
        assert not plan.is_empty()
        assert not plan.affects_engine()

    def test_bandwidth_factors_compound(self):
        plan = FaultPlan(
            bandwidth=(
                BandwidthFault("link", 0.5),
                BandwidthFault("l*", 0.5, start_s=1.0, end_s=2.0),
            )
        )
        assert plan.bandwidth_factor("link", 0.0) == 0.5
        assert plan.bandwidth_factor("link", 1.5) == 0.25
        assert plan.bandwidth_factor("mem", 1.5) == 1.0

    def test_boundaries_sorted_and_next(self):
        plan = FaultPlan(
            bandwidth=(
                BandwidthFault("a", 0.5, start_s=2.0, end_s=3.0),
                BandwidthFault("b", 0.5, start_s=0.0),  # inf end: no boundary
            )
        )
        assert plan.boundaries() == (2.0, 3.0)
        assert plan.next_boundary(0.0) == 2.0
        assert plan.next_boundary(2.0) == 3.0
        assert plan.next_boundary(3.0) is None

    def test_json_round_trip_preserves_infinite_window(self):
        plan = FaultPlan(
            seed=7,
            bandwidth=(
                BandwidthFault("nvlink_*", 0.3),
                BandwidthFault("xbus", 0.5, start_s=0.1, end_s=0.2),
            ),
            tasks=(TaskFault("join[*]", probability=0.5, max_failures=3),),
            gpu_memory_factor=0.25,
            retry=RetryPolicy(max_attempts=6, class_budgets=(("Join", 2),)),
            description="kitchen sink",
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert math.isinf(restored.bandwidth[0].end_s)
        # And the wire form is plain JSON (None, not Infinity).
        assert "Infinity" not in plan.to_json()

    def test_save_and_load(self, tmp_path):
        plan = FaultPlan(seed=3, tasks=(TaskFault("t"),))
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_with_seed_and_summary(self):
        plan = FaultPlan(
            bandwidth=(BandwidthFault("link", 0.5),), description="brownout"
        )
        assert plan.with_seed(9).seed == 9
        summary = plan.summary()
        assert "brownout" in summary and "1 bandwidth fault(s)" in summary


class TestAmbientPlan:
    def test_injected_nests_and_restores(self):
        outer = FaultPlan(seed=1)
        inner = FaultPlan(seed=2)
        assert faults.active() is None
        with faults.injected(outer):
            assert faults.active() is outer
            with faults.injected(inner):
                assert faults.active() is inner
            assert faults.active() is outer
        assert faults.active() is None

    def test_injected_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with faults.injected(FaultPlan(seed=1)):
                raise RuntimeError("boom")
        assert faults.active() is None

    def test_effective_gpu_memory(self):
        assert faults.effective_gpu_memory(100.0) == 100.0
        before = telemetry.registry.counter("faults.capacity_shrink")
        with faults.injected(FaultPlan(gpu_memory_factor=0.25)):
            assert faults.effective_gpu_memory(100.0) == 25.0
        after = telemetry.registry.counter("faults.capacity_shrink")
        assert after == before + 1


class TestEngineFaults:
    def _graph(self):
        return TaskGraph(
            chain(
                [
                    Task(name="a", phase="P", demands={"link": 100.0}),
                    Task(name="b", phase="Q", demands={"mem": 100.0}),
                ]
            )
        )

    def test_empty_plan_is_byte_identical_to_no_plan(self):
        engine = SimEngine(pool_())
        clean = engine.run(self._graph())
        with faults.injected(FaultPlan(seed=5)):
            injected = engine.run(self._graph())
        assert injected.makespan_seconds == clean.makespan_seconds
        assert [
            (e.name, e.start, e.end) for e in injected.trace
        ] == [(e.name, e.start, e.end) for e in clean.trace]
        assert injected.fault_events == ()

    def test_transient_fault_retries_and_records(self):
        plan = FaultPlan(
            tasks=(TaskFault("a", max_failures=2),),
            retry=RetryPolicy(
                max_attempts=4, backoff_s=0.1, multiplier=2.0,
                max_backoff_s=1.0,
            ),
        )
        engine = SimEngine(pool_())
        clean = engine.run(self._graph())
        before = telemetry.registry.snapshot()
        with faults.injected(plan):
            result = engine.run(self._graph())
        delta = telemetry.registry.delta_since(before)["counters"]
        # Two doomed attempts, each a full task duration plus backoff
        # (0.1 then 0.2 simulated seconds).
        assert result.makespan_seconds == pytest.approx(
            clean.makespan_seconds + 2 * 1.0 + 0.1 + 0.2
        )
        failed = [e for e in result.trace if "failed" in e.name]
        assert [e.name for e in failed] == [
            "a [attempt 1 failed]",
            "a [attempt 2 failed]",
        ]
        kinds = [e.kind for e in result.fault_events]
        assert kinds == ["task_transient", "task_transient"]
        assert delta["faults.task_transient"] == 2
        assert delta["faults.retries"] == 2

    def test_permanent_fault_raises_with_context(self):
        plan = FaultPlan(tasks=(TaskFault("b", transient=False),))
        with faults.injected(plan):
            with pytest.raises(TaskFailedError) as info:
                SimEngine(pool_()).run(self._graph())
        error = info.value
        assert error.task_name == "b"
        assert error.phase == "Q"
        assert not error.gpu  # "mem" is not a GPU-side resource
        assert error.attempts == 1

    def test_gpu_attribution(self):
        graph = TaskGraph([Task(name="k", demands={"gpu_mem_bw": 10.0})])
        pool = ResourcePool({"gpu_mem_bw": Resource("gpu_mem_bw", 100.0)})
        plan = FaultPlan(tasks=(TaskFault("k", transient=False),))
        with faults.injected(plan):
            with pytest.raises(TaskFailedError) as info:
                SimEngine(pool).run(graph)
        assert info.value.gpu

    def test_retry_budget_exhaustion_escalates(self):
        plan = FaultPlan(
            tasks=(TaskFault("a"),),  # always fires
            retry=RetryPolicy(max_attempts=3, backoff_s=1e-3),
        )
        with faults.injected(plan):
            with pytest.raises(TaskFailedError) as info:
                SimEngine(pool_()).run(self._graph())
        assert info.value.attempts == 3
        assert "retry budget exhausted" in str(info.value)

    def test_class_budget_exhaustion_escalates(self):
        plan = FaultPlan(
            tasks=(TaskFault("a", max_failures=3),),
            retry=RetryPolicy(
                max_attempts=10, class_budgets=(("P", 1),)
            ),
        )
        with faults.injected(plan):
            with pytest.raises(TaskFailedError) as info:
                SimEngine(pool_()).run(self._graph())
        assert "class 'P' retry budget exhausted" in str(info.value)

    def test_bandwidth_fault_slows_run_and_emits_events(self):
        plan = FaultPlan(bandwidth=(BandwidthFault("link", 0.5),))
        engine = SimEngine(pool_())
        clean = engine.run(self._graph())
        with faults.injected(plan):
            slowed = engine.run(self._graph())
        # Task "a" (link) takes 2x; task "b" (mem) is unaffected.
        assert slowed.makespan_seconds == pytest.approx(
            clean.makespan_seconds + 1.0
        )
        assert [e.kind for e in slowed.fault_events] == ["bandwidth_drop"]
        assert slowed.fault_events[0].target == "link"

    def test_bandwidth_window_applies_only_inside(self):
        # 100 units of link at capacity 100: 1s clean. Halved for the
        # first 0.5s: 25 units done by t=0.5, remaining 75 at full rate.
        plan = FaultPlan(
            bandwidth=(BandwidthFault("link", 0.5, start_s=0.0, end_s=0.5),)
        )
        graph = TaskGraph([Task(name="t", demands={"link": 100.0})])
        with faults.injected(plan):
            result = SimEngine(pool_()).run(graph)
        assert result.makespan_seconds == pytest.approx(0.5 + 0.75)
        kinds = [e.kind for e in result.fault_events]
        assert kinds == ["bandwidth_drop", "bandwidth_restore"]

    def test_work_conservation_under_retries(self):
        # Each attempt consumes the full demand: 3 attempts = 3x units.
        plan = FaultPlan(
            tasks=(TaskFault("t", max_failures=2),),
            retry=RetryPolicy(max_attempts=5, backoff_s=1e-3),
        )
        graph = TaskGraph([Task(name="t", demands={"link": 100.0})])
        with faults.injected(plan):
            result = SimEngine(pool_()).run(graph)
        assert result.resource_busy_units["link"] == pytest.approx(300.0)


class TestRunCacheKey:
    def test_key_includes_the_ambient_plan(self, system, fault_workload):
        from repro.join.run_cache import run_key
        from repro.join.triton import TritonJoin

        op = TritonJoin(system)
        clean_key = run_key(op, fault_workload)
        with faults.injected(FaultPlan(gpu_memory_factor=0.5)):
            fault_key = run_key(op, fault_workload)
        assert clean_key != fault_key
        # Same plan content => same key (plans are value objects).
        with faults.injected(FaultPlan(gpu_memory_factor=0.5)):
            assert run_key(op, fault_workload) == fault_key
