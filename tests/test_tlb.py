"""Unit tests for the translation model (repro.hw.tlb)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.specs import ac922
from repro.hw.tlb import (
    EFFECTIVE_GPU_TLB_STREAMS,
    EFFECTIVE_IOTLB_STREAMS,
    MemSpace,
    TranslationModel,
)
from repro.units import gib


@pytest.fixture(scope="module")
def model():
    system = ac922()
    return TranslationModel(system.gpu.tlb, system.cpu.iommu)


class TestChaseLatency:
    """The Fig. 7 plateaus are exact calibration targets."""

    @pytest.mark.parametrize("range_gib,expected_ns", [
        (1, 151.9), (6, 151.9), (8, 151.9), (9.8, 226.7), (10.7, 226.7),
    ])
    def test_gpu_memory(self, model, range_gib, expected_ns):
        latency = model.chase_latency(gib(range_gib), MemSpace.GPU)
        assert latency == pytest.approx(expected_ns * 1e-9)

    @pytest.mark.parametrize("range_gib,expected_ns", [
        (1, 449.7), (8, 449.7), (9.5, 532.9), (32, 532.9),
        (37, 3186.4), (64, 3186.4), (87.5, 3186.4),
    ])
    def test_cpu_memory(self, model, range_gib, expected_ns):
        latency = model.chase_latency(gib(range_gib), MemSpace.CPU)
        assert latency == pytest.approx(expected_ns * 1e-9)

    def test_transition_window_interpolates(self, model):
        low = model.chase_latency(gib(32), MemSpace.CPU)
        mid = model.chase_latency(gib(34.5), MemSpace.CPU)
        high = model.chase_latency(gib(37), MemSpace.CPU)
        assert low < mid < high

    def test_rejects_nonpositive_range(self, model):
        with pytest.raises(ConfigurationError):
            model.chase_latency(0, MemSpace.CPU)


class TestRandomProfile:
    def test_small_footprint_all_hits(self, model):
        profile = model.random_profile(gib(1), MemSpace.CPU)
        assert profile.l2_miss_fraction == 0.0
        assert profile.iommu_requests_per_access == 0.0
        assert profile.access_rate_ceiling_per_s == float("inf")

    def test_gpu_memory_never_reaches_iommu(self, model):
        profile = model.random_profile(gib(15), MemSpace.GPU)
        assert profile.iommu_requests_per_access == 0.0
        assert profile.l2_miss_fraction > 0.0

    def test_l3_star_covers_up_to_32_gib(self, model):
        profile = model.random_profile(gib(30), MemSpace.CPU)
        assert profile.walk_fraction == 0.0
        assert profile.l2_miss_fraction > 0.5

    def test_walks_beyond_l3_star(self, model):
        profile = model.random_profile(gib(64), MemSpace.CPU)
        assert profile.walk_fraction == pytest.approx(0.5)
        assert profile.access_rate_ceiling_per_s < 1e8

    def test_walker_ceiling_scales_with_walk_fraction(self, model):
        half = model.random_profile(gib(64), MemSpace.CPU)
        most = model.random_profile(gib(128), MemSpace.CPU)
        assert most.walk_fraction > half.walk_fraction
        assert most.access_rate_ceiling_per_s < half.access_rate_ceiling_per_s

    def test_latency_increases_with_footprint(self, model):
        latencies = [
            model.random_profile(gib(r), MemSpace.CPU).avg_latency_s
            for r in (4, 16, 40, 80)
        ]
        assert latencies == sorted(latencies)

    def test_rejects_nonpositive_footprint(self, model):
        with pytest.raises(ConfigurationError):
            model.random_profile(0.0, MemSpace.CPU)


class TestStreamProfile:
    """The stream-cursor model behind Fig. 18(d)."""

    def test_no_misses_within_effective_entries(self, model):
        profile = model.stream_profile(EFFECTIVE_GPU_TLB_STREAMS)
        assert profile.gpu_miss_fraction == 0.0
        assert profile.access_rate_ceiling_per_s == float("inf")

    def test_half_misses_at_double_the_entries(self, model):
        # "a miss on every second flush" between fanout 64 and 128.
        profile = model.stream_profile(2 * EFFECTIVE_GPU_TLB_STREAMS)
        assert profile.gpu_miss_fraction == pytest.approx(0.5)

    def test_iotlb_absorbs_mid_fanouts(self, model):
        profile = model.stream_profile(512)
        assert profile.gpu_miss_fraction > 0.8
        assert profile.walk_fraction == 0.0

    def test_walks_at_high_fanout(self, model):
        profile = model.stream_profile(2 * EFFECTIVE_IOTLB_STREAMS)
        assert profile.walk_fraction > 0.4
        assert profile.access_rate_ceiling_per_s < 1e7

    def test_miss_fraction_monotone_in_streams(self, model):
        fractions = [
            model.stream_profile(f).gpu_miss_fraction
            for f in (32, 64, 128, 512, 4096)
        ]
        assert fractions == sorted(fractions)

    def test_rejects_nonpositive_streams(self, model):
        with pytest.raises(ConfigurationError):
            model.stream_profile(0)


class TestSequentialRequests:
    def test_one_request_per_entry_reach(self, model):
        # 32 MiB coalesced reach with 2 MiB pages.
        requests = model.sequential_iommu_requests(gib(1), 2 * 1024 * 1024)
        assert requests == pytest.approx(32.0)

    def test_small_pages_raise_request_rate(self, model):
        huge = model.sequential_iommu_requests(gib(1), 2 * 1024 * 1024)
        small = model.sequential_iommu_requests(gib(1), 64 * 1024)
        assert small > huge

    def test_rejects_bad_page_size(self, model):
        with pytest.raises(ConfigurationError):
            model.sequential_iommu_requests(gib(1), 0)
