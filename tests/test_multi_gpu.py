"""Unit tests for the multi-GPU Triton join extension."""

import pytest

from repro.data.generator import generate_workload
from repro.errors import ConfigurationError
from repro.join import TritonJoin, reference_join
from repro.join.multi_gpu import XBUS, MultiGpuTritonJoin, _retarget, _suffixed
from repro.sim import resources as res
from repro.sim.tasks import Task


@pytest.fixture(scope="module")
def workload():
    return generate_workload(2048, 2048, scale_divisor=32768, seed=21)


class TestRetargeting:
    def test_per_gpu_resources_renamed(self):
        task = Task(
            name="k",
            demands={res.NVLINK_TO_GPU: 10.0, res.CPU_CORES: 5.0},
            rate_caps={res.NVLINK_TO_GPU: 2.0},
        )
        _retarget(task, 1)
        assert _suffixed(res.NVLINK_TO_GPU, 1) in task.demands
        assert res.NVLINK_TO_GPU not in task.demands
        # Shared (non-GPU) resources keep their names.
        assert res.CPU_CORES in task.demands
        assert task.rate_caps[_suffixed(res.NVLINK_TO_GPU, 1)] == 2.0


class TestCorrectness:
    def test_matches_reference(self, system, workload):
        expected = reference_join(workload.build, workload.probe)
        run = MultiGpuTritonJoin(system, gpu_count=2).run(workload)
        assert run.match == expected

    def test_one_gpu_equals_single_gpu_result(self, system, workload):
        single = TritonJoin(system).run(workload)
        multi = MultiGpuTritonJoin(system, gpu_count=1).run(workload)
        assert multi.match == single.match

    def test_rejects_zero_gpus(self, system):
        with pytest.raises(ConfigurationError):
            MultiGpuTritonJoin(system, gpu_count=0)


class TestScaling:
    def test_two_gpus_speed_up(self, system, workload):
        single = TritonJoin(system).run(workload).seconds
        dual = MultiGpuTritonJoin(system, gpu_count=2).run(workload).seconds
        assert dual < single

    def test_scaling_efficiency_band(self, system, workload):
        # Near-linear: degraded by the X-bus exchange but boosted by the
        # doubled aggregate GPU-memory cache (a larger fraction of the
        # state stays resident), so slight superlinearity is possible.
        efficiency = MultiGpuTritonJoin(system, gpu_count=2).scaling_efficiency(
            workload
        )
        assert 0.55 < efficiency <= 1.15

    def test_slow_xbus_hurts(self, system, workload):
        fast = MultiGpuTritonJoin(system, 2, xbus_bytes_per_s=64e9)
        slow = MultiGpuTritonJoin(system, 2, xbus_bytes_per_s=8e9)
        assert slow.run(workload).seconds > fast.run(workload).seconds

    def test_xbus_resource_in_graph(self, system, workload):
        op = MultiGpuTritonJoin(system, gpu_count=2)
        run = op.run(workload)
        assert run.notes["gpu_count"] == 2
        # Part-1 tasks carry X-bus demand.
        part1 = [e for e in run.sim.trace if e.phase == "Part 1"]
        assert len(part1) == 2
