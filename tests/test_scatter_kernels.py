"""Property tests: the counting-scatter kernels vs. stable argsort.

``repro.kernels.scatter`` replaces every dense-selector comparison sort
in the functional layer; its contract is *byte-identity* with
``np.argsort(kind="stable")`` (and the offsets with histogram + scan).
These tests sweep random distributions — empty input, a single
partition, all-equal keys, keys at the domain edge, skew — through both
the scatter and the reference paths, and cross-check the grouped joins
and an end-to-end experiment table under :func:`force_reference`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing.batch import (
    grouped_bucket_chaining_join,
    grouped_perfect_join,
)
from repro.kernels.scatter import (
    DENSE_FLOOR_ENTRIES,
    claim_first,
    counting_order,
    counting_order_and_offsets,
    dense_offsets,
    dense_table_fits,
    exclusive_scan,
    force_reference,
    reference_mode_active,
)


@st.composite
def keys_in_domain(draw):
    """Random dense-selector arrays across the shapes the kernels see."""
    domain = draw(st.integers(min_value=1, max_value=5000))
    n = draw(st.integers(min_value=0, max_value=1500))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    style = draw(
        st.sampled_from(["uniform", "skewed", "all_equal", "edges", "few"])
    )
    rng = np.random.default_rng(seed)
    if style == "uniform":
        keys = rng.integers(0, domain, size=n)
    elif style == "skewed":
        keys = np.minimum(
            rng.geometric(0.05, size=n) - 1, domain - 1
        ).astype(np.int64)
    elif style == "all_equal":
        keys = np.full(n, draw(st.integers(0, domain - 1)), dtype=np.int64)
    elif style == "edges":
        keys = rng.choice([0, domain - 1], size=n)
    else:  # few distinct values
        pool = rng.integers(0, domain, size=max(1, min(4, domain)))
        keys = rng.choice(pool, size=n)
    return keys.astype(np.int64), domain


class TestCountingOrder:
    @given(keys_in_domain())
    @settings(max_examples=120, deadline=None)
    def test_matches_stable_argsort(self, case):
        keys, domain = case
        expected = np.argsort(keys, kind="stable")
        np.testing.assert_array_equal(counting_order(keys, domain), expected)
        np.testing.assert_array_equal(
            counting_order(keys, domain, reference=True), expected
        )

    @given(keys_in_domain())
    @settings(max_examples=120, deadline=None)
    def test_offsets_match_histogram_scan(self, case):
        keys, domain = case
        expected_off = exclusive_scan(np.bincount(keys, minlength=domain))
        for reference in (False, True):
            order, offsets = counting_order_and_offsets(
                keys, domain, reference=reference
            )
            np.testing.assert_array_equal(
                order, np.argsort(keys, kind="stable")
            )
            np.testing.assert_array_equal(offsets, expected_off)
        np.testing.assert_array_equal(dense_offsets(keys, domain), expected_off)

    def test_empty_input(self):
        empty = np.empty(0, dtype=np.int64)
        assert len(counting_order(empty, 7)) == 0
        order, offsets = counting_order_and_offsets(empty, 7)
        assert len(order) == 0
        np.testing.assert_array_equal(offsets, np.zeros(8, dtype=np.int64))

    def test_single_partition(self):
        keys = np.zeros(64, dtype=np.int64)
        np.testing.assert_array_equal(counting_order(keys, 1), np.arange(64))
        _, offsets = counting_order_and_offsets(keys, 1)
        np.testing.assert_array_equal(offsets, [0, 64])

    def test_max_domain_keys(self):
        domain = 97
        keys = np.full(10, domain - 1, dtype=np.int64)
        np.testing.assert_array_equal(counting_order(keys, domain), np.arange(10))

    def test_out_of_domain_raises(self):
        with pytest.raises(ConfigurationError):
            counting_order(np.array([0, 5]), 5)
        with pytest.raises(ConfigurationError):
            counting_order(np.array([-1, 0]), 5)
        with pytest.raises(ConfigurationError):
            counting_order(np.array([0]), 0)
        with pytest.raises(ConfigurationError):
            counting_order(np.zeros((2, 2), dtype=np.int64), 4)

    def test_force_reference_toggles_and_restores(self):
        assert not reference_mode_active()
        with force_reference():
            assert reference_mode_active()
            keys = np.array([3, 1, 3, 0], dtype=np.int64)
            np.testing.assert_array_equal(
                counting_order(keys, 4), np.argsort(keys, kind="stable")
            )
        assert not reference_mode_active()


class TestClaimFirst:
    @given(keys_in_domain())
    @settings(max_examples=120, deadline=None)
    def test_matches_reference(self, case):
        slots, domain = case
        np.testing.assert_array_equal(
            claim_first(slots, domain),
            claim_first(slots, domain, reference=True),
        )

    @given(keys_in_domain())
    @settings(max_examples=60, deadline=None)
    def test_marks_exactly_first_occurrences(self, case):
        slots, domain = case
        mask = claim_first(slots, domain)
        seen = set()
        for i, slot in enumerate(slots):
            assert mask[i] == (int(slot) not in seen)
            seen.add(int(slot))

    def test_empty(self):
        assert len(claim_first(np.empty(0, dtype=np.int64), 3)) == 0


class TestDenseTableFits:
    def test_floor_always_fits(self):
        assert dense_table_fits(0, DENSE_FLOOR_ENTRIES - 1)

    def test_boundary_against_build_bytes(self):
        build_rows = DENSE_FLOOR_ENTRIES  # above the floor regime
        exact = 2 * build_rows - 1  # (domain + 1) * 8 == build_rows * 16
        assert dense_table_fits(build_rows, exact)
        assert not dense_table_fits(build_rows, exact + 1)


@st.composite
def grouped_case(draw):
    """Grouped build/probe arrays spanning skew, fanout, empty groups."""
    groups = draw(st.integers(min_value=1, max_value=16))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    key_space = draw(st.integers(min_value=1, max_value=200))
    skewed = draw(st.booleans())
    rng = np.random.default_rng(seed)

    def side(max_rows):
        weights = rng.random(groups) ** (3.0 if skewed else 1.0)
        weights[rng.random(groups) < 0.25] = 0.0
        if weights.sum() == 0:
            weights[0] = 1.0
        rows = int(rng.integers(1, max_rows))
        g = np.sort(rng.choice(groups, size=rows, p=weights / weights.sum()))
        keys = rng.integers(1, key_space + 1, size=rows)
        return g.astype(np.int64), keys.astype(np.int64)

    build_groups, build_keys = side(400)
    probe_groups, probe_keys = side(800)
    build_values = rng.integers(0, 2**40, size=len(build_keys)).astype(np.int64)
    return build_keys, build_values, build_groups, probe_keys, probe_groups


class TestGroupedJoinsByteIdentical:
    @given(grouped_case(), st.sampled_from([1, 4, 64, 2048, 1 << 14]))
    @settings(max_examples=60, deadline=None)
    def test_bucket_chaining_vs_reference_path(self, case, buckets):
        bk, bv, bg, pk, pg = case
        got = grouped_bucket_chaining_join(bk, bv, bg, pk, pg, buckets=buckets)
        ref = grouped_bucket_chaining_join(
            bk, bv, bg, pk, pg, buckets=buckets, reference=True
        )
        with force_reference():
            forced = grouped_bucket_chaining_join(
                bk, bv, bg, pk, pg, buckets=buckets
            )
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(got, forced):
            np.testing.assert_array_equal(a, b)

    @given(grouped_case())
    @settings(max_examples=60, deadline=None)
    def test_perfect_vs_reference_path(self, case):
        bk, bv, bg, pk, pg = case
        # Perfect hashing needs per-group-unique build keys: dedup.
        composite_seen = set()
        keep = []
        for i, (g, k) in enumerate(zip(bg, bk)):
            if (int(g), int(k)) not in composite_seen:
                composite_seen.add((int(g), int(k)))
                keep.append(i)
        keep = np.array(keep, dtype=np.int64)
        bk, bv, bg = bk[keep], bv[keep], bg[keep]
        got = grouped_perfect_join(bk, bv, bg, pk, pg)
        ref = grouped_perfect_join(bk, bv, bg, pk, pg, reference=True)
        with force_reference():
            forced = grouped_perfect_join(bk, bv, bg, pk, pg)
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(got, forced):
            np.testing.assert_array_equal(a, b)

    def test_perfect_duplicate_keys_raise_on_both_paths(self):
        bk = np.array([1, 1], dtype=np.int64)
        bv = np.array([10, 20], dtype=np.int64)
        bg = np.zeros(2, dtype=np.int64)
        pk = np.array([1], dtype=np.int64)
        pg = np.zeros(1, dtype=np.int64)
        for reference in (False, True):
            with pytest.raises(ConfigurationError, match="unique keys"):
                grouped_perfect_join(bk, bv, bg, pk, pg, reference=reference)


class TestExperimentByteIdentity:
    def test_fig13_table_identical_under_force_reference(self):
        from repro.bench.experiments import fig13_scaling

        subset = ["GPU Triton Join (Bucket Chaining)", "GPU NP Join (Perfect)"]
        fast = fig13_scaling.run(
            sizes=(128, 512), scale_divisor=65536.0, subset=subset
        )
        with force_reference():
            slow = fig13_scaling.run(
                sizes=(128, 512), scale_divisor=65536.0, subset=subset
            )
        assert [r.label for r in fast.rows] == [r.label for r in slow.rows]
        for fast_row, slow_row in zip(fast.rows, slow.rows):
            assert fast_row.values == slow_row.values
