"""Property-based tests: end-to-end join correctness on random workloads."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.data.generator import Workload, WorkloadConfig
from repro.hashing import HashScheme
from repro.hw.specs import ac922
from repro.join import (
    CpuPartitionedJoin,
    CpuRadixJoin,
    NoPartitioningJoin,
    TritonJoin,
    reference_join,
)

SYSTEM = ac922()


@st.composite
def workloads(draw):
    """Random PK/FK workloads: dense shuffled keys, arbitrary probes."""
    build_rows = draw(st.integers(min_value=1, max_value=2000))
    probe_rows = draw(st.integers(min_value=1, max_value=4000))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    build_keys = rng.permutation(build_rows).astype(np.int64) + 1
    # Probes may miss: range extends past the build keys.
    probe_keys = rng.integers(
        1, int(build_rows * 1.5) + 2, size=probe_rows
    ).astype(np.int64)
    build = Relation(
        build_keys,
        {"attr0": rng.integers(0, 2**40, build_rows).astype(np.int64)},
        name="R",
    )
    probe = Relation(
        probe_keys,
        {"attr0": rng.integers(0, 2**40, probe_rows).astype(np.int64)},
        name="S",
    )
    config = WorkloadConfig(
        build_m_tuples=build_rows / 1e6, probe_m_tuples=probe_rows / 1e6
    )
    return Workload(config=config, build=build, probe=probe)


@given(workloads())
@settings(max_examples=25, deadline=None)
def test_triton_matches_reference(workload):
    expected = reference_join(workload.build, workload.probe)
    assert TritonJoin(SYSTEM).run(workload).match == expected


@given(workloads())
@settings(max_examples=25, deadline=None)
def test_all_operators_agree(workload):
    expected = reference_join(workload.build, workload.probe)
    operators = (
        NoPartitioningJoin(SYSTEM, HashScheme.LINEAR_PROBING),
        NoPartitioningJoin(SYSTEM, HashScheme.BUCKET_CHAINING),
        CpuRadixJoin(SYSTEM),
        CpuPartitionedJoin(SYSTEM),
        TritonJoin(SYSTEM),
    )
    for op in operators:
        assert op.run(workload).match == expected, op.name


@given(workloads())
@settings(max_examples=15, deadline=None)
def test_simulated_time_is_positive_and_finite(workload):
    run = TritonJoin(SYSTEM).run(workload)
    assert 0 < run.seconds < float("inf")
    assert run.throughput_g_tuples_per_s > 0
