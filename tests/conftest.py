"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.data.generator import generate_workload
from repro.hw.cpu import CpuModel
from repro.hw.gpu import GpuModel
from repro.hw.specs import ac922, xeon_system


@pytest.fixture(scope="session")
def system():
    """The paper's AC922 evaluation system."""
    return ac922()


@pytest.fixture(scope="session")
def xeon():
    """The Xeon Gold 6126 comparison host."""
    return xeon_system()


@pytest.fixture(scope="session")
def gpu_model(system):
    return GpuModel(system)


@pytest.fixture(scope="session")
def cpu_model(system):
    return CpuModel(system.cpu)


@pytest.fixture(scope="session")
def small_workload():
    """A small, full-scale (divisor 1) PK/FK workload."""
    return generate_workload(0.05, 0.1, scale_divisor=1, seed=7)


@pytest.fixture(scope="session")
def scaled_workload():
    """A nominal 512M workload materialized at a 8192x divisor."""
    return generate_workload(512, 512, scale_divisor=8192, seed=11)
