"""Shared fixtures for the test suite."""

from __future__ import annotations

import dataclasses

import pytest

from repro import faults
from repro.data.generator import generate_workload
from repro.hw.cpu import CpuModel
from repro.hw.gpu import GpuModel
from repro.hw.specs import ac922, xeon_system


@pytest.fixture(scope="session")
def system():
    """The paper's AC922 evaluation system."""
    return ac922()


@pytest.fixture(scope="session")
def xeon():
    """The Xeon Gold 6126 comparison host."""
    return xeon_system()


@pytest.fixture(scope="session")
def gpu_model(system):
    return GpuModel(system)


@pytest.fixture(scope="session")
def cpu_model(system):
    return CpuModel(system.cpu)


@pytest.fixture(scope="session")
def small_workload():
    """A small, full-scale (divisor 1) PK/FK workload."""
    return generate_workload(0.05, 0.1, scale_divisor=1, seed=7)


@pytest.fixture(scope="session")
def scaled_workload():
    """A nominal 512M workload materialized at a 8192x divisor."""
    return generate_workload(512, 512, scale_divisor=8192, seed=11)


def gpu_with_memory(capacity_bytes, base=None):
    """An AC922 variant whose GPU memory is capped at ``capacity_bytes``.

    Shared by the failure-injection and degradation-ladder tests (which
    used to each build their own crippled spec inline).
    """
    base = base if base is not None else ac922()
    memory = dataclasses.replace(base.gpu.memory, capacity_bytes=capacity_bytes)
    return base.with_gpu(dataclasses.replace(base.gpu, memory=memory))


@pytest.fixture(scope="session")
def fault_workload():
    """The small, fast workload all fault/ladder tests share."""
    return generate_workload(128, 128, scale_divisor=65536, seed=13)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """Fail loudly if a test leaks an ambient fault plan to its neighbours."""
    assert faults.active() is None, "a previous test leaked a fault plan"
    yield
    if faults.active() is not None:
        faults.deactivate()
        raise AssertionError("test left an ambient fault plan active")


@pytest.fixture(autouse=True)
def _no_leaked_exec_config():
    """Same guard for the ambient out-of-core execution config."""
    from repro.exec import context as exec_context

    assert exec_context.active() is None, (
        "a previous test leaked an execution config"
    )
    yield
    if exec_context.active() is not None:
        exec_context.deactivate()
        raise AssertionError("test left an ambient execution config active")
