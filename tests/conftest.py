"""Shared fixtures for the test suite, plus the order-shuffle plugin.

``--shuffle-seed N`` reorders the collected tests with a seeded
shuffle (module groups are shuffled, then the tests inside each
module) — our stand-in for pytest-randomly, which this environment
cannot install. CI runs one shuffled leg per build; to reproduce a
shuffled failure locally, rerun with the seed printed in the pytest
header. Order-dependence is a bug: the autouse guards below fail the
*offending* test when it leaks ambient state to its neighbours.
"""

from __future__ import annotations

import dataclasses
import random
import threading

import pytest

from repro import faults
from repro.data.generator import generate_workload
from repro.hw.cpu import CpuModel
from repro.hw.gpu import GpuModel
from repro.hw.specs import ac922, xeon_system


def pytest_addoption(parser):
    parser.addoption(
        "--shuffle-seed",
        type=int,
        default=None,
        metavar="N",
        help="shuffle test order with this seed (catches order-dependent "
        "tests; the header prints the seed for reproduction)",
    )


def pytest_report_header(config):
    seed = config.getoption("--shuffle-seed")
    if seed is not None:
        return f"shuffle: test order randomized with --shuffle-seed {seed}"
    return None


def pytest_collection_modifyitems(config, items):
    seed = config.getoption("--shuffle-seed")
    if seed is None:
        return
    rng = random.Random(seed)
    # Shuffle module order, and test order within each module, but keep
    # each module's tests contiguous: module-scoped fixtures still set
    # up once, and a failure reads as "this module, shuffled".
    by_module = {}
    for item in items:
        by_module.setdefault(item.module.__name__, []).append(item)
    modules = list(by_module)
    rng.shuffle(modules)
    shuffled = []
    for module in modules:
        group = by_module[module]
        rng.shuffle(group)
        shuffled.extend(group)
    items[:] = shuffled


@pytest.fixture(scope="session")
def system():
    """The paper's AC922 evaluation system."""
    return ac922()


@pytest.fixture(scope="session")
def xeon():
    """The Xeon Gold 6126 comparison host."""
    return xeon_system()


@pytest.fixture(scope="session")
def gpu_model(system):
    return GpuModel(system)


@pytest.fixture(scope="session")
def cpu_model(system):
    return CpuModel(system.cpu)


@pytest.fixture(scope="session")
def small_workload():
    """A small, full-scale (divisor 1) PK/FK workload."""
    return generate_workload(0.05, 0.1, scale_divisor=1, seed=7)


@pytest.fixture(scope="session")
def scaled_workload():
    """A nominal 512M workload materialized at a 8192x divisor."""
    return generate_workload(512, 512, scale_divisor=8192, seed=11)


def gpu_with_memory(capacity_bytes, base=None):
    """An AC922 variant whose GPU memory is capped at ``capacity_bytes``.

    Shared by the failure-injection and degradation-ladder tests (which
    used to each build their own crippled spec inline).
    """
    base = base if base is not None else ac922()
    memory = dataclasses.replace(base.gpu.memory, capacity_bytes=capacity_bytes)
    return base.with_gpu(dataclasses.replace(base.gpu, memory=memory))


@pytest.fixture(scope="session")
def fault_workload():
    """The small, fast workload all fault/ladder tests share."""
    return generate_workload(128, 128, scale_divisor=65536, seed=13)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """Fail loudly if a test leaks an ambient fault plan to its neighbours."""
    assert faults.active() is None, "a previous test leaked a fault plan"
    yield
    if faults.active() is not None:
        faults.deactivate()
        raise AssertionError("test left an ambient fault plan active")


@pytest.fixture(autouse=True)
def _no_leaked_exec_config():
    """Same guard for the ambient out-of-core execution config."""
    from repro.exec import context as exec_context

    assert exec_context.active() is None, (
        "a previous test leaked an execution config"
    )
    yield
    if exec_context.active() is not None:
        exec_context.deactivate()
        raise AssertionError("test left an ambient execution config active")


@pytest.fixture(autouse=True)
def _no_leaked_service_state():
    """No live join-service workers or ambient event context between tests.

    A service whose test forgot ``shutdown()`` would keep daemon worker
    threads alive into every later test; an unexited ``events.context``
    would silently tag other tests' events. Both are exactly the kind of
    leak only a shuffled run surfaces — so guard them on every run.
    """
    from repro.telemetry import events

    def service_threads():
        return [
            thread.name
            for thread in threading.enumerate()
            if thread.name.startswith("join-service-")
        ]

    assert service_threads() == [], (
        "a previous test leaked join-service worker threads"
    )
    assert events.context_fields() == {}, (
        "a previous test leaked an events.context"
    )
    yield
    leaked = service_threads()
    assert leaked == [], f"test left join-service threads alive: {leaked}"
    assert events.context_fields() == {}, (
        "test left an events.context open"
    )
