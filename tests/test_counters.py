"""Unit tests for hardware performance counters (repro.hw.counters)."""

import pytest

from repro.hw.counters import PerfCounters


class TestAccumulation:
    def test_merge_sums_fields(self):
        a = PerfCounters(cpu_mem_read_bytes=10, iommu_requests=3)
        b = PerfCounters(cpu_mem_read_bytes=5, iommu_requests=1)
        a.merge(b)
        assert a.cpu_mem_read_bytes == 15
        assert a.iommu_requests == 4

    def test_merge_returns_self(self):
        a = PerfCounters()
        assert a.merge(PerfCounters()) is a

    def test_add_creates_new(self):
        a = PerfCounters(instructions=1)
        b = PerfCounters(instructions=2)
        total = a + b
        assert total.instructions == 3
        assert a.instructions == 1

    def test_stall_accounting(self):
        counters = PerfCounters()
        counters.add_stall("memory_dep", 0.5)
        counters.add_stall("memory_dep", 0.25)
        counters.add_stall("sync", 0.1)
        assert counters.stall_seconds == {"memory_dep": 0.75, "sync": 0.1}

    def test_merge_combines_stalls(self):
        a = PerfCounters()
        a.add_stall("sync", 1.0)
        b = PerfCounters()
        b.add_stall("sync", 2.0)
        b.add_stall("pipe_busy", 3.0)
        a.merge(b)
        assert a.stall_seconds == {"sync": 3.0, "pipe_busy": 3.0}

    def test_snapshot_is_independent(self):
        a = PerfCounters(tuples_processed=7)
        snap = a.snapshot()
        a.tuples_processed = 100
        assert snap.tuples_processed == 7


class TestDerivedMetrics:
    def test_wire_bytes_sums_directions(self):
        c = PerfCounters(
            nvlink_wire_to_gpu_bytes=100, nvlink_wire_to_cpu_bytes=50
        )
        assert c.nvlink_wire_bytes == 150

    def test_overhead_fraction(self):
        c = PerfCounters(
            nvlink_payload_bytes=100,
            nvlink_wire_to_gpu_bytes=80,
            nvlink_wire_to_cpu_bytes=45,
        )
        assert c.nvlink_overhead_fraction == pytest.approx(0.25)

    def test_overhead_zero_payload(self):
        assert PerfCounters().nvlink_overhead_fraction == 0.0

    def test_tuples_per_transaction(self):
        c = PerfCounters(tuples_processed=20, nvlink_transactions=10)
        assert c.tuples_per_transaction == 2.0

    def test_iommu_per_tuple(self):
        c = PerfCounters(tuples_processed=1000, iommu_requests=5)
        assert c.iommu_requests_per_tuple == pytest.approx(0.005)

    def test_iommu_per_tuple_no_tuples(self):
        assert PerfCounters(iommu_requests=5).iommu_requests_per_tuple == 0.0

    def test_utilization_uses_to_gpu_direction(self):
        # The paper measures CPU->GPU wire bandwidth against 75 GB/s.
        c = PerfCounters(
            nvlink_wire_to_gpu_bytes=37.5e9, nvlink_wire_to_cpu_bytes=1e12
        )
        assert c.interconnect_utilization(75e9, 1.0) == pytest.approx(0.5)

    def test_utilization_zero_time(self):
        assert PerfCounters().interconnect_utilization(75e9, 0.0) == 0.0
