"""Property-based tests: interleaved cache mapping invariants (Fig. 12)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.memory import InterleavedMapping
from repro.hw.tlb import MemSpace

PAGE = 2 * 1024 * 1024


@st.composite
def mappings(draw):
    pages = draw(st.integers(min_value=1, max_value=2000))
    gpu_pages = draw(st.integers(min_value=0, max_value=pages))
    return InterleavedMapping(
        total_bytes=pages * PAGE, gpu_bytes=gpu_pages * PAGE, page_bytes=PAGE
    )


@given(mappings())
@settings(max_examples=80, deadline=None)
def test_gpu_page_count_matches_fraction(mapping):
    gpu_pages = sum(
        1 for _, space in mapping.iter_pages() if space is MemSpace.GPU
    )
    expected = mapping.gpu_bytes // PAGE
    assert abs(gpu_pages - expected) <= 1


@given(mappings())
@settings(max_examples=80, deadline=None)
def test_interleaving_spreads_pages_evenly(mapping):
    """Error diffusion: no same-space run exceeds ceil(ratio) + 1."""
    f = mapping.gpu_fraction
    if f in (0.0, 1.0):
        return
    runs = mapping.run_lengths()
    max_cpu_run = max(
        (n for space, n in runs if space is MemSpace.CPU), default=0
    )
    max_gpu_run = max(
        (n for space, n in runs if space is MemSpace.GPU), default=0
    )
    assert max_cpu_run <= (1.0 - f) / f + 2
    assert max_gpu_run <= f / (1.0 - f) + 2


@given(mappings(), st.floats(min_value=0.0, max_value=1e12))
@settings(max_examples=80, deadline=None)
def test_split_bytes_conserves(mapping, nbytes):
    gpu_part, cpu_part = mapping.split_bytes(nbytes)
    assert gpu_part + cpu_part == pytest.approx(nbytes)
    assert gpu_part >= 0 and cpu_part >= 0


@given(mappings())
@settings(max_examples=80, deadline=None)
def test_run_lengths_cover_all_pages(mapping):
    assert sum(n for _, n in mapping.run_lengths()) == mapping.page_count
