"""Tests for skew-aware chunking, large-value aggregation, and the
extension experiments."""

import numpy as np
import pytest

from repro.aggregate import AggregateFunction, reference_aggregate
from repro.aggregate.group_by import _accumulate
from repro.bench.experiments import ALL_EXPERIMENTS
from repro.data.generator import generate_workload
from repro.data.relation import Relation
from repro.join import TritonJoin, reference_join


class TestChunkWeights:
    def test_uniform_workload_has_even_chunks(self, system):
        workload = generate_workload(512, 512, scale_divisor=8192)
        op = TritonJoin(system)
        weights = op.chunk_weights(workload, op.plan(workload))
        assert len(weights) == op.pipeline_chunks
        assert sum(weights) == pytest.approx(1.0, abs=1e-6)
        assert max(weights) < 1.6 / op.pipeline_chunks

    def test_skewed_workload_has_heavy_chunks(self, system):
        uniform = generate_workload(512, 512, scale_divisor=8192, seed=3)
        skewed = generate_workload(
            512, 512, zipf_theta=1.5, scale_divisor=8192, seed=3
        )
        op = TritonJoin(system)
        u = max(op.chunk_weights(uniform, op.plan(uniform)))
        s = max(op.chunk_weights(skewed, op.plan(skewed)))
        assert s > 1.5 * u

    def test_skew_slows_the_join_without_a_cliff(self, system):
        op = TritonJoin(system)
        uniform = op.run(
            generate_workload(1024, 1024, scale_divisor=16384, seed=5)
        ).seconds
        skewed = op.run(
            generate_workload(
                1024, 1024, zipf_theta=1.5, scale_divisor=16384, seed=5
            )
        ).seconds
        assert skewed > uniform
        assert skewed < 2.0 * uniform

    def test_skewed_join_still_correct(self, system):
        workload = generate_workload(
            0.05, 0.2, zipf_theta=1.5, scale_divisor=1, seed=5
        )
        expected = reference_join(workload.build, workload.probe)
        assert TritonJoin(system).run(workload).match == expected


class TestLargeValueAggregation:
    def test_sum_of_huge_payloads_is_exact(self):
        # Regression: float64 bincount weights silently lose precision
        # above 2^53; int64 accumulation must not.
        keys = np.array([1, 1, 2], dtype=np.int64)
        values = np.array([2**60, 3, 2**61], dtype=np.int64)
        group_keys, states = _accumulate(AggregateFunction.SUM, keys, values)
        assert states[0] == 2**60 + 3
        assert states[1] == 2**61

    def test_reference_aggregate_handles_random_62_bit_values(self):
        rng = np.random.default_rng(0)
        relation = Relation(
            rng.integers(1, 50, size=10_000).astype(np.int64),
            {"attr0": rng.integers(0, 2**62, size=10_000).astype(np.int64)},
        )
        first = reference_aggregate(relation, AggregateFunction.SUM)
        second = reference_aggregate(relation, AggregateFunction.SUM)
        assert first == second
        assert first.groups == 49


class TestExtensionExperimentsSmoke:
    def test_ext_interconnect(self):
        table = ALL_EXPERIMENTS["ext_interconnect"].run(
            sizes=(2048,), scale_divisor=65536
        )
        assert table.rows

    def test_ext_scaling(self):
        multi, agg = ALL_EXPERIMENTS["ext_scaling"].run(
            sizes=(512,), scale_divisor=65536
        )
        assert multi.rows and agg.rows

    def test_ext_robustness(self):
        skew, selectivity, bw, failures = ALL_EXPERIMENTS["ext_robustness"].run(
            scale_divisor=65536
        )
        assert skew.rows and selectivity.rows
        assert bw.rows and failures.rows

    def test_registry_is_complete(self):
        assert len(ALL_EXPERIMENTS) == 25
        assert "ext_service" in ALL_EXPERIMENTS
