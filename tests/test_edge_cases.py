"""Edge-case tests across modules: degenerate inputs, boundaries, and
failure paths that the mainline tests do not reach."""

import numpy as np
import pytest

from repro.data.generator import generate_workload
from repro.data.relation import Relation
from repro.errors import ConfigurationError, SimulationError
from repro.hashing import BucketChainingTable, LinearProbingTable
from repro.hw.gpu import MemoryRequest
from repro.hw.interconnect import AccessPattern, Op
from repro.hw.tlb import MemSpace
from repro.join import (
    CpuPartitionedJoin,
    CpuRadixJoin,
    NoPartitioningJoin,
    TritonJoin,
    reference_join,
)
from repro.partition import SharedPartitioner, partition_relation
from repro.sim.engine import SimEngine
from repro.sim.resources import Resource, ResourcePool
from repro.sim.tasks import Task, TaskGraph
from repro.sim.trace import PhaseBreakdown, TraceEntry


class TestDegenerateJoins:
    def test_single_tuple_each_side(self, system):
        build = Relation(np.array([1], dtype=np.int64),
                         {"attr0": np.array([42], dtype=np.int64)})
        probe = Relation(np.array([1], dtype=np.int64),
                         {"attr0": np.array([7], dtype=np.int64)})
        from repro.data.generator import Workload, WorkloadConfig

        workload = Workload(
            config=WorkloadConfig(1e-6, 1e-6), build=build, probe=probe
        )
        expected = reference_join(build, probe)
        for op in (TritonJoin(system), NoPartitioningJoin(system),
                   CpuRadixJoin(system), CpuPartitionedJoin(system)):
            run = op.run(workload)
            assert run.match == expected
            assert run.match.matches == 1

    def test_no_matches_at_all(self, system):
        build = Relation(np.arange(1, 101, dtype=np.int64),
                         {"attr0": np.arange(100, dtype=np.int64)})
        probe = Relation(np.arange(1000, 1100, dtype=np.int64),
                         {"attr0": np.arange(100, dtype=np.int64)})
        from repro.data.generator import Workload, WorkloadConfig

        workload = Workload(
            config=WorkloadConfig(1e-4, 1e-4), build=build, probe=probe
        )
        run = TritonJoin(system).run(workload)
        assert run.match.matches == 0
        assert run.seconds > 0

    def test_probe_much_smaller_than_build(self, system):
        workload = generate_workload(0.1, 0.001, scale_divisor=1, seed=2)
        expected = reference_join(workload.build, workload.probe)
        assert TritonJoin(system).run(workload).match == expected

    def test_duplicate_heavy_probe(self, system):
        # Every probe tuple hits the same build key.
        build = Relation(np.arange(1, 1001, dtype=np.int64),
                         {"attr0": np.arange(1000, dtype=np.int64)})
        probe = Relation(np.full(5000, 500, dtype=np.int64),
                         {"attr0": np.zeros(5000, dtype=np.int64)})
        from repro.data.generator import Workload, WorkloadConfig

        workload = Workload(
            config=WorkloadConfig(1e-3, 5e-3), build=build, probe=probe
        )
        run = TritonJoin(system).run(workload)
        assert run.match.matches == 5000


class TestHashTableEdges:
    def test_single_entry_tables(self):
        keys = np.array([7], dtype=np.int64)
        values = np.array([70], dtype=np.int64)
        for cls in (LinearProbingTable, BucketChainingTable):
            table = cls(keys, values)
            idx, matched = table.probe(np.array([7, 8], dtype=np.int64))
            assert list(idx) == [0]
            assert list(matched) == [70]

    def test_extreme_keys(self):
        keys = np.array([2**62, -(2**62), 0], dtype=np.int64)
        values = np.array([1, 2, 3], dtype=np.int64)
        table = LinearProbingTable(keys, values)
        idx, matched = table.probe(keys)
        assert sorted(matched.tolist()) == [1, 2, 3]

    def test_probe_all_misses_on_full_ish_table(self):
        keys = np.arange(1, 101, dtype=np.int64)
        table = LinearProbingTable(keys, keys, load_factor=0.9)
        idx, _ = table.probe(np.arange(1000, 1100, dtype=np.int64))
        assert len(idx) == 0


class TestPartitionEdges:
    def test_one_bit_partitioning(self):
        keys = np.arange(1, 1001, dtype=np.int64)
        parts = partition_relation(Relation(keys), bits=1)
        assert parts.fanout == 2
        assert parts.sizes().sum() == 1000

    def test_partition_empty_relation(self):
        parts = partition_relation(
            Relation(np.empty(0, dtype=np.int64)), bits=4
        )
        assert parts.offsets[-1] == 0
        assert parts.max_partition_rows() == 0

    def test_all_keys_identical(self):
        keys = np.full(500, 42, dtype=np.int64)
        parts = partition_relation(Relation(keys), bits=4)
        assert parts.max_partition_rows() == 500
        assert (parts.sizes() > 0).sum() == 1

    def test_shared_partitioner_minimum_fanout(self):
        work = SharedPartitioner().gpu_work(
            1000.0, 16, 1, MemSpace.CPU, MemSpace.CPU, 65536
        )
        assert work.fanout == 1


class TestSimulatorEdges:
    def test_task_with_only_min_seconds(self):
        pool = ResourcePool({"r": Resource("r", 1.0)})
        task = Task(name="wait", min_seconds=0.5)
        result = SimEngine(pool).run(TaskGraph([task]))
        assert result.makespan_seconds == pytest.approx(0.5)

    def test_chain_of_barriers(self):
        pool = ResourcePool({"r": Resource("r", 1.0)})
        a = Task(name="a")
        b = Task(name="b")
        b.after.append(a)
        result = SimEngine(pool).run(TaskGraph([a, b]))
        assert result.makespan_seconds == 0.0

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            Task(name="bad", demands={"r": -1.0})

    def test_unknown_resource_fails_at_run(self):
        pool = ResourcePool({"r": Resource("r", 1.0)})
        task = Task(name="t", demands={"ghost": 1.0})
        with pytest.raises(ConfigurationError):
            SimEngine(pool).run(TaskGraph([task]))

    def test_trace_entry_requires_completion(self):
        task = Task(name="t", demands={})
        with pytest.raises(SimulationError):
            TraceEntry.from_task(task)

    def test_empty_breakdown(self):
        breakdown = PhaseBreakdown.from_trace([], 0.0)
        assert breakdown.seconds_by_phase == {}
        assert breakdown.fraction("anything") == 0.0
        assert breakdown.percentages() == {}

    def test_zero_duration_entries_ignored(self):
        entries = [TraceEntry("a", "A", 1.0, 1.0),
                   TraceEntry("b", "B", 0.0, 2.0)]
        breakdown = PhaseBreakdown.from_trace(entries, 2.0)
        assert breakdown.fraction("B") == pytest.approx(1.0)


class TestMemoryRequestEdges:
    def test_fractional_total_bytes(self, gpu_model):
        request = MemoryRequest(
            total_bytes=100.5, access_bytes=16, op=Op.READ,
            space=MemSpace.CPU, pattern=AccessPattern.RANDOM,
        )
        cost = gpu_model.access_cost(request)
        assert cost.seconds > 0

    def test_access_larger_than_total(self, gpu_model):
        request = MemoryRequest(
            total_bytes=8, access_bytes=128, op=Op.READ,
            space=MemSpace.CPU, pattern=AccessPattern.RANDOM,
        )
        assert request.accesses == 1
        assert gpu_model.access_cost(request).seconds > 0

    def test_stream_count_one(self, gpu_model):
        request = MemoryRequest(
            total_bytes=1 << 20, access_bytes=1024, op=Op.WRITE,
            space=MemSpace.CPU, pattern=AccessPattern.RANDOM,
            stream_count=1,
        )
        cost = gpu_model.access_cost(request)
        assert cost.counters.iommu_requests == 0.0


class TestWorkloadEdges:
    def test_tiny_fractional_cardinalities(self):
        workload = generate_workload(0.001, 0.002, scale_divisor=1)
        assert len(workload.build) == 1000
        assert len(workload.probe) == 2000

    def test_heavily_scaled_tiny_workload_still_joins(self, system):
        workload = generate_workload(1, 1, scale_divisor=1e9)
        run = TritonJoin(system).run(workload)
        assert run.match.matches == len(workload.probe)
