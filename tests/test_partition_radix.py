"""Unit tests for functional radix partitioning (repro.partition.radix)."""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.errors import ConfigurationError
from repro.hashing.functions import radix_bits_of
from repro.partition.radix import (
    count_flushes,
    partition_relation,
    radix_histogram,
)


@pytest.fixture
def relation():
    rng = np.random.default_rng(9)
    keys = rng.permutation(20_000).astype(np.int64) + 1
    return Relation(keys, {"attr0": keys * 7})


class TestHistogram:
    def test_counts_sum_to_rows(self, relation):
        counts = radix_histogram(relation.keys, bits=5)
        assert counts.sum() == len(relation)
        assert len(counts) == 32

    def test_matches_selector_bincount(self, relation):
        counts = radix_histogram(relation.keys, bits=7)
        selector = radix_bits_of(relation.keys, 7)
        assert np.array_equal(counts, np.bincount(selector, minlength=128))

    def test_offset_changes_distribution(self, relation):
        low = radix_histogram(relation.keys, bits=4, offset=0)
        high = radix_histogram(relation.keys, bits=4, offset=4)
        assert not np.array_equal(low, high)


class TestPartitionRelation:
    def test_partitions_are_disjoint_and_complete(self, relation):
        parts = partition_relation(relation, bits=4)
        assert parts.offsets[0] == 0
        assert parts.offsets[-1] == len(relation)
        assert np.array_equal(
            np.sort(parts.relation.keys), np.sort(relation.keys)
        )

    def test_each_partition_has_uniform_selector(self, relation):
        parts = partition_relation(relation, bits=4)
        for index in range(parts.fanout):
            part = parts.partition(index)
            if len(part) == 0:
                continue
            selectors = radix_bits_of(part.keys, 4)
            assert (selectors == index).all()

    def test_payloads_travel_with_keys(self, relation):
        parts = partition_relation(relation, bits=4)
        assert np.array_equal(
            parts.relation.payloads["attr0"], parts.relation.keys * 7
        )

    def test_stable_within_partition(self, relation):
        # A stable partition preserves input order inside each partition.
        parts = partition_relation(relation, bits=2)
        selector = radix_bits_of(relation.keys, 2)
        for index in range(4):
            expected = relation.keys[selector == index]
            rows = parts.partition_rows(index)
            assert np.array_equal(parts.relation.keys[rows], expected)

    def test_second_pass_refines_first(self, relation):
        first = partition_relation(relation, bits=3)
        part0 = first.partition(0)
        second = partition_relation(part0, bits=3, offset=3)
        # Refined partitions still agree on the first-level selector.
        assert (radix_bits_of(second.relation.keys, 3) == 0).all()

    def test_sizes_and_max(self, relation):
        parts = partition_relation(relation, bits=5)
        sizes = parts.sizes()
        assert sizes.sum() == len(relation)
        assert parts.max_partition_rows() == sizes.max()

    def test_partition_index_bounds(self, relation):
        parts = partition_relation(relation, bits=2)
        with pytest.raises(ConfigurationError):
            parts.partition(4)

    def test_rejects_nonpositive_bits(self, relation):
        with pytest.raises(ConfigurationError):
            partition_relation(relation, bits=0)


class TestCountFlushes:
    def test_exact_multiples(self):
        assert count_flushes(np.array([8, 16]), 8) == 3

    def test_partial_flush_counted(self):
        assert count_flushes(np.array([9]), 8) == 2

    def test_empty_partitions_free(self):
        assert count_flushes(np.array([0, 0, 5]), 8) == 1

    def test_matches_functional_partitioning(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(1, 1_000_000, size=50_000).astype(np.int64)
        counts = radix_histogram(keys, bits=6)
        flushes = count_flushes(counts, 32)
        # At least one flush per non-empty partition; no more than
        # tuples/buffer + one partial per partition.
        nonempty = (counts > 0).sum()
        assert flushes >= nonempty
        assert flushes <= counts.sum() // 32 + nonempty

    def test_rejects_bad_buffer(self):
        with pytest.raises(ConfigurationError):
            count_flushes(np.array([1]), 0)
