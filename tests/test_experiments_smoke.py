"""Smoke tests: every experiment module runs and returns sane tables.

The benchmarks exercise full configurations; these tests run reduced
sweeps so the whole harness stays covered by `pytest tests/`.
"""

import pytest

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import ExperimentTable

FAST = dict(scale_divisor=65536)


def tables_of(result):
    return result if isinstance(result, tuple) else (result,)


def assert_sane(result):
    for table in tables_of(result):
        assert isinstance(table, ExperimentTable)
        assert table.rows, table.experiment
        assert table.columns, table.experiment
        for row in table.rows:
            for value in row.values.values():
                if value is not None:
                    assert value == value  # no NaNs
                    assert value >= 0


def test_fig01(): assert_sane(ALL_EXPERIMENTS["fig01"].run(sizes=(128, 2048), **FAST))


def test_fig04(): assert_sane(ALL_EXPERIMENTS["fig04"].run())


def test_fig06(): assert_sane(ALL_EXPERIMENTS["fig06"].run())


def test_fig07(): assert_sane(ALL_EXPERIMENTS["fig07"].run())


def test_tab01(): assert_sane(ALL_EXPERIMENTS["tab01"].run())


def test_fig13():
    assert_sane(ALL_EXPERIMENTS["fig13"].run(sizes=(128, 2048), **FAST))


def test_fig14():
    assert_sane(ALL_EXPERIMENTS["fig14"].run(sizes=(128, 2048), **FAST))


def test_fig15():
    result = ALL_EXPERIMENTS["fig15"].run(sizes=(512,), **FAST)
    assert_sane(result)
    breakdown = result[0]
    assert sum(breakdown.row("512M").values.values()) == pytest.approx(
        100.0, abs=1.0
    )


def test_fig16():
    assert_sane(ALL_EXPERIMENTS["fig16"].run(sizes=(512,), **FAST))


def test_fig17():
    assert_sane(ALL_EXPERIMENTS["fig17"].run(sizes=(128, 2048), **FAST))


def test_fig18():
    assert_sane(ALL_EXPERIMENTS["fig18"].run(fanouts=(64, 2048)))


def test_fig19():
    assert_sane(
        ALL_EXPERIMENTS["fig19"].run(
            cache_sizes_gib=(0.0, 14.9), sizes=(512,), **FAST
        )
    )


def test_fig20():
    assert_sane(ALL_EXPERIMENTS["fig20"].run(sizes=(512,), **FAST))


def test_fig21():
    assert_sane(
        ALL_EXPERIMENTS["fig21"].run(sizes=(512,), ratios=(1, 8), **FAST)
    )


def test_fig22():
    assert_sane(
        ALL_EXPERIMENTS["fig22"].run(
            payload_counts=(0, 4), sizes=(512,), **FAST
        )
    )


def test_fig23():
    assert_sane(ALL_EXPERIMENTS["fig23"].run(sizes=(512,), **FAST))


def test_fig24():
    assert_sane(
        ALL_EXPERIMENTS["fig24"].run(
            sm_counts=(10, 80), sizes=(512,), **FAST
        )
    )


def test_ablations():
    assert_sane(ALL_EXPERIMENTS["ablations"].run(sizes=(512,), **FAST))


def test_ext_outofcore():
    result = ALL_EXPERIMENTS["ext_outofcore"].run(
        size_m=512, workers=2, repeats=1, **FAST
    )
    assert_sane(result)
    # Every out-of-core mode must report identity with the reference.
    identical = result.row("identical to in-memory").values
    assert all(value == 1.0 for value in identical.values())


def test_ext_coprocess():
    result = ALL_EXPERIMENTS["ext_coprocess"].run(
        fractions=(0.0, 0.375, 1.0), size_m=128, **FAST
    )
    assert_sane(result)
    assert any("advisor picks" in note for note in result.notes)
