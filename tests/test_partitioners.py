"""Unit tests for the GPU partitioning algorithms' work profiles."""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.errors import ConfigurationError
from repro.hw.interconnect import Op
from repro.hw.tlb import MemSpace
from repro.partition import (
    HierarchicalPartitioner,
    LinearPartitioner,
    SharedPartitioner,
    StandardPartitioner,
)
from repro.units import KIB, gib

SCRATCH = 64 * KIB
TUPLE = 16
ALL = [
    StandardPartitioner(),
    LinearPartitioner(),
    SharedPartitioner(),
    HierarchicalPartitioner(),
]


def work_for(algorithm, fanout, tuples=gib(1) / TUPLE, dst=MemSpace.CPU):
    return algorithm.gpu_work(tuples, TUPLE, fanout, MemSpace.CPU, dst, SCRATCH)


class TestFunctionalEquivalence:
    """All algorithms produce identical partitioned output."""

    def test_same_partitions(self):
        rng = np.random.default_rng(4)
        relation = Relation(rng.integers(1, 10**6, size=10_000).astype(np.int64))
        reference = None
        for algorithm in ALL:
            parts = algorithm.partition(relation, bits=5)
            if reference is None:
                reference = parts
            else:
                assert np.array_equal(parts.relation.keys, reference.relation.keys)
                assert np.array_equal(parts.offsets, reference.offsets)


class TestWorkShapes:
    def test_read_volume_equals_input(self):
        for algorithm in ALL:
            work = work_for(algorithm, 64)
            assert work.input_bytes == pytest.approx(gib(1))

    def test_write_volume_present(self):
        for algorithm in ALL:
            work = work_for(algorithm, 64)
            writes = [r for r in work.requests if r.op is Op.WRITE]
            assert sum(r.total_bytes for r in writes) >= gib(1) * 0.99

    def test_duplex_set_for_cpu_to_cpu(self):
        work = work_for(SharedPartitioner(), 64)
        assert all(
            r.duplex for r in work.requests if r.space is MemSpace.CPU
        )

    def test_duplex_unset_for_gpu_destination(self):
        work = work_for(SharedPartitioner(), 64, dst=MemSpace.GPU)
        assert not any(r.duplex for r in work.requests)

    def test_rejects_non_power_of_two_fanout(self):
        with pytest.raises(ConfigurationError):
            work_for(SharedPartitioner(), 100)

    def test_rejects_fanout_beyond_buffers(self):
        with pytest.raises(ConfigurationError):
            work_for(SharedPartitioner(), 8192)  # > 64 KiB / 16 B


class TestStandard:
    def test_tuple_granular_writes(self):
        work = work_for(StandardPartitioner(), 512)
        assert work.flush_bytes == TUPLE

    def test_unbounded_fanout(self):
        assert StandardPartitioner().max_fanout(TUPLE, SCRATCH) > 1 << 20


class TestLinear:
    def test_flush_shrinks_with_fanout(self):
        linear = LinearPartitioner()
        small = work_for(linear, 4).flush_bytes
        large = work_for(linear, 1024).flush_bytes
        assert small > large

    def test_writes_misaligned(self):
        work = work_for(LinearPartitioner(), 64)
        write = next(r for r in work.requests if r.op is Op.WRITE)
        assert not write.aligned

    def test_batch_fills_scratchpad(self):
        assert LinearPartitioner().batch_tuples(TUPLE, SCRATCH) == 4096


class TestShared:
    def test_flush_is_whole_buffer(self):
        shared = SharedPartitioner()
        work = work_for(shared, 64)
        assert work.flush_bytes == SCRATCH // 64

    def test_flushes_aligned(self):
        work = work_for(SharedPartitioner(), 64)
        write = next(
            r for r in work.requests
            if r.op is Op.WRITE and r.space is MemSpace.CPU
        )
        assert write.aligned
        assert write.stream_count == 64

    def test_perfect_coalescing_until_128_bytes(self):
        shared = SharedPartitioner()
        # 64 KiB / 512 = 128 B: the last perfectly coalesced fanout.
        assert work_for(shared, 512).flush_bytes == 128
        assert work_for(shared, 1024).flush_bytes == 64

    def test_instructions_grow_with_fanout(self):
        shared = SharedPartitioner()
        assert (
            work_for(shared, 2048).issue_slots
            > work_for(shared, 64).issue_slots
        )


class TestHierarchical:
    def test_cpu_flush_granularity_is_l2_buffer(self):
        hierarchical = HierarchicalPartitioner()
        for fanout in (64, 512, 2048):
            work = work_for(hierarchical, fanout)
            assert work.flush_bytes == hierarchical.l2_buffer_bytes

    def test_gpu_memory_detour_for_spills(self):
        work = work_for(HierarchicalPartitioner(), 512)
        gpu_requests = [r for r in work.requests if r.space is MemSpace.GPU]
        # L1->L2 eviction writes plus flush read-back.
        assert len(gpu_requests) == 2
        assert sum(r.total_bytes for r in gpu_requests) == pytest.approx(
            2 * gib(1)
        )

    def test_no_detour_for_gpu_destination(self):
        work = work_for(HierarchicalPartitioner(), 512, dst=MemSpace.GPU)
        reads = [r for r in work.requests if r.op is Op.READ]
        assert all(r.space is MemSpace.CPU for r in reads)

    def test_efficiency_drop_only_at_tiny_buffers(self):
        hierarchical = HierarchicalPartitioner()
        ok = hierarchical.write_profile(1024, TUPLE, SCRATCH, MemSpace.CPU)
        tiny = hierarchical.write_profile(2048, TUPLE, SCRATCH, MemSpace.CPU)
        assert ok.write_efficiency == 1.0
        assert tiny.write_efficiency < 1.0

    def test_more_instructions_than_shared(self):
        shared = work_for(SharedPartitioner(), 512)
        hierarchical = work_for(HierarchicalPartitioner(), 512)
        assert hierarchical.issue_slots > shared.issue_slots


class TestDesignGoalsDeclarations:
    def test_table_one(self):
        goals = {a.name: a.design_goals for a in ALL}
        assert not goals["Standard"].space_efficient
        assert goals["Linear"].space_efficient
        assert not goals["Linear"].perfect_coalescing
        assert goals["Shared"].perfect_coalescing
        assert not goals["Shared"].high_fanout
        assert goals["Hierarchical"].high_fanout
