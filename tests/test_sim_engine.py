"""Unit tests for the fluid-flow simulator (repro.sim)."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.hw.counters import PerfCounters
from repro.sim.engine import SimEngine
from repro.sim.resources import Resource, ResourcePool
from repro.sim.tasks import Task, TaskGraph, chain


@pytest.fixture
def pool():
    return ResourcePool(
        {
            "link": Resource("link", 100.0),
            "mem": Resource("mem", 1000.0),
            "sm": Resource("sm", 10.0),
        }
    )


def task(name, demands, caps=None, after=(), min_seconds=0.0, phase=""):
    t = Task(
        name=name,
        phase=phase or name,
        demands=demands,
        rate_caps=caps or {},
        min_seconds=min_seconds,
    )
    t.after.extend(after)
    return t


class TestResourcePool:
    def test_lookup(self, pool):
        assert pool.capacity("link") == 100.0
        assert "mem" in pool

    def test_unknown_resource(self, pool):
        with pytest.raises(ConfigurationError):
            pool["bogus"]

    def test_for_system_has_standard_resources(self, system):
        pool = ResourcePool.for_system(system)
        for name in (
            "nvlink_to_gpu",
            "nvlink_to_cpu",
            "cpu_mem_bw",
            "gpu_mem_bw",
            "gpu_sm",
            "cpu_cores",
            "iommu_walks",
        ):
            assert name in pool

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Resource("zero", 0.0)


class TestSingleTask:
    def test_duration_is_demand_over_capacity(self, pool):
        t = task("t", {"link": 200.0})
        result = SimEngine(pool).run(TaskGraph([t]))
        assert result.makespan_seconds == pytest.approx(2.0)

    def test_rate_cap_binds_before_capacity(self, pool):
        t = task("t", {"link": 200.0}, caps={"link": 50.0})
        result = SimEngine(pool).run(TaskGraph([t]))
        assert result.makespan_seconds == pytest.approx(4.0)

    def test_max_semantics_across_resources(self, pool):
        # Memory and compute overlap within one kernel.
        t = task("t", {"link": 100.0, "sm": 5.0})
        result = SimEngine(pool).run(TaskGraph([t]))
        assert result.makespan_seconds == pytest.approx(1.0)

    def test_min_seconds(self, pool):
        t = task("t", {"link": 1.0}, min_seconds=3.0)
        result = SimEngine(pool).run(TaskGraph([t]))
        assert result.makespan_seconds == pytest.approx(3.0)

    def test_zero_work_barrier(self, pool):
        t = task("barrier", {})
        result = SimEngine(pool).run(TaskGraph([t]))
        assert result.makespan_seconds == 0.0

    def test_standalone_seconds(self):
        t = task("t", {"link": 200.0}, caps={"link": 50.0})
        assert t.standalone_seconds() == pytest.approx(4.0)

    def test_standalone_needs_caps(self):
        t = task("t", {"link": 200.0})
        with pytest.raises(SimulationError):
            t.standalone_seconds()


class TestSharing:
    def test_two_tasks_split_a_resource(self, pool):
        a = task("a", {"link": 100.0})
        b = task("b", {"link": 100.0})
        result = SimEngine(pool).run(TaskGraph([a, b]))
        assert result.makespan_seconds == pytest.approx(2.0)

    def test_disjoint_resources_fully_overlap(self, pool):
        a = task("a", {"link": 100.0})
        b = task("b", {"mem": 1000.0})
        result = SimEngine(pool).run(TaskGraph([a, b]))
        assert result.makespan_seconds == pytest.approx(1.0)

    def test_unequal_demands_finish_in_order(self, pool):
        small = task("small", {"link": 50.0})
        large = task("large", {"link": 150.0})
        result = SimEngine(pool).run(TaskGraph([small, large]))
        assert small.end_time < large.end_time
        assert result.makespan_seconds == pytest.approx(2.0)

    def test_freed_capacity_speeds_survivors(self, pool):
        # After the small task finishes, the large one gets the full rate:
        # phase 1: both at 50/s until small (50 units) done at t=1;
        # phase 2: large has 100 left at 100/s -> total 2.0.
        small = task("small", {"link": 50.0})
        large = task("large", {"link": 150.0})
        result = SimEngine(pool).run(TaskGraph([small, large]))
        assert result.makespan_seconds == pytest.approx(2.0)


class TestDependencies:
    def test_chain_serializes(self, pool):
        a = task("a", {"link": 100.0})
        b = task("b", {"link": 100.0})
        result = SimEngine(pool).run(TaskGraph(chain([a, b])))
        assert result.makespan_seconds == pytest.approx(2.0)
        assert b.start_time == pytest.approx(a.end_time)

    def test_diamond(self, pool):
        a = task("a", {"link": 100.0})
        b = task("b", {"link": 100.0}, after=[a])
        c = task("c", {"mem": 1000.0}, after=[a])
        d = task("d", {"sm": 10.0}, after=[b, c])
        result = SimEngine(pool).run(TaskGraph([a, b, c, d]))
        assert result.makespan_seconds == pytest.approx(3.0)
        assert d.start_time == pytest.approx(2.0)

    def test_pipeline_overlap(self, pool):
        # Two-stage pipeline over 4 chunks: stage1 uses link, stage2 mem.
        stage1 = [task(f"s1[{i}]", {"link": 100.0}) for i in range(4)]
        stage2 = [task(f"s2[{i}]", {"mem": 1000.0}) for i in range(4)]
        for prev, cur in zip(stage1, stage1[1:]):
            cur.after.append(prev)
        for i in range(4):
            stage2[i].after.append(stage1[i])
            if i:
                stage2[i].after.append(stage2[i - 1])
        result = SimEngine(pool).run(TaskGraph(stage1 + stage2))
        # 4 chunks through 2 unit-time stages = 5 time units, not 8.
        assert result.makespan_seconds == pytest.approx(5.0)

    def test_cycle_detected(self, pool):
        a = task("a", {"link": 1.0})
        b = task("b", {"link": 1.0}, after=[a])
        a.after.append(b)
        with pytest.raises(SimulationError):
            SimEngine(pool).run(TaskGraph([a, b]))

    def test_missing_dependency_detected(self, pool):
        a = task("a", {"link": 1.0})
        b = task("b", {"link": 1.0}, after=[a])
        with pytest.raises(SimulationError):
            SimEngine(pool).run(TaskGraph([b]))


class TestResults:
    def test_counters_merged(self, pool):
        a = task("a", {"link": 100.0})
        a.counters.merge(PerfCounters(tuples_processed=10))
        b = task("b", {"link": 100.0})
        b.counters.merge(PerfCounters(tuples_processed=5))
        result = SimEngine(pool).run(TaskGraph([a, b]))
        assert result.counters.tuples_processed == 15

    def test_resource_utilization(self, pool):
        t = task("t", {"link": 100.0})
        result = SimEngine(pool).run(TaskGraph([t]))
        util = result.resource_utilization(pool)
        assert util["link"] == pytest.approx(1.0)
        assert util["mem"] == 0.0

    def test_trace_entries(self, pool):
        a = task("a", {"link": 100.0}, phase="Phase A")
        result = SimEngine(pool).run(TaskGraph([a]))
        assert len(result.trace) == 1
        entry = result.trace[0]
        assert entry.phase == "Phase A"
        assert entry.duration == pytest.approx(1.0)

    def test_graph_rerun_is_deterministic(self, pool):
        a = task("a", {"link": 100.0})
        b = task("b", {"link": 50.0}, after=[a])
        graph = TaskGraph([a, b])
        engine = SimEngine(pool)
        first = engine.run(graph).makespan_seconds
        second = engine.run(graph).makespan_seconds
        assert first == pytest.approx(second)


class TestPhaseBreakdown:
    def test_sums_to_makespan(self, pool):
        a = task("a", {"link": 100.0}, phase="X")
        b = task("b", {"mem": 1000.0}, phase="Y")
        c = task("c", {"link": 100.0}, phase="X", after=[a, b])
        result = SimEngine(pool).run(TaskGraph([a, b, c]))
        breakdown = result.phase_breakdown()
        assert sum(breakdown.seconds_by_phase.values()) == pytest.approx(
            result.makespan_seconds
        )

    def test_overlap_shared_between_phases(self, pool):
        a = task("a", {"link": 100.0}, phase="X")
        b = task("b", {"mem": 1000.0}, phase="Y")
        result = SimEngine(pool).run(TaskGraph([a, b]))
        breakdown = result.phase_breakdown()
        assert breakdown.fraction("X") == pytest.approx(0.5)
        assert breakdown.fraction("Y") == pytest.approx(0.5)

    def test_percentages_sum_to_100(self, pool):
        a = task("a", {"link": 100.0}, phase="X")
        b = task("b", {"link": 50.0}, phase="Y", after=[a])
        result = SimEngine(pool).run(TaskGraph([a, b]))
        assert sum(result.phase_breakdown().percentages().values()) == (
            pytest.approx(100.0)
        )
