"""Unit tests for the Gantt visualizer and the CLI experiment runner."""

import pytest

from repro.bench.__main__ import main as cli_main
from repro.data.generator import generate_workload
from repro.errors import ConfigurationError
from repro.join import TritonJoin
from repro.sim.engine import SimEngine
from repro.sim.resources import Resource, ResourcePool
from repro.sim.tasks import Task, TaskGraph, chain
from repro.sim.visualize import gantt, utilization_summary


@pytest.fixture(scope="module")
def sim_result():
    pool = ResourcePool({"link": Resource("link", 100.0)})
    a = Task(name="a", phase="Phase A", demands={"link": 100.0})
    b = Task(name="b", phase="Phase B", demands={"link": 50.0})
    graph = TaskGraph(chain([a, b]))
    return SimEngine(pool).run(graph), pool


class TestGantt:
    def test_contains_all_phases(self, sim_result):
        result, _ = sim_result
        chart = gantt(result)
        assert "Phase A" in chart
        assert "Phase B" in chart
        assert "timeline" in chart

    def test_per_task_mode(self, sim_result):
        result, _ = sim_result
        chart = gantt(result, by_phase=False)
        assert "a " in chart or chart.count("|") >= 4

    def test_sequence_is_visible(self, sim_result):
        result, _ = sim_result
        lines = gantt(result, width=30).splitlines()[1:]
        row_a = next(l for l in lines if "Phase A" in l)
        row_b = next(l for l in lines if "Phase B" in l)
        bar_a = row_a.split("|")[1]
        bar_b = row_b.split("|")[1]
        # A occupies the first two thirds, B the last third.
        assert bar_a[:10].count("█") > 5
        assert bar_b[:10].strip() == ""
        assert bar_b[-8:].count("█") > 3

    def test_row_limit(self):
        pool = ResourcePool({"link": Resource("link", 100.0)})
        tasks = chain(
            [Task(name=f"t{i}", demands={"link": 10.0}) for i in range(50)]
        )
        result = SimEngine(pool).run(TaskGraph(tasks))
        chart = gantt(result, by_phase=False, max_rows=5)
        assert "more tasks" in chart

    def test_rejects_tiny_width(self, sim_result):
        result, _ = sim_result
        with pytest.raises(ConfigurationError):
            gantt(result, width=2)

    def test_real_triton_timeline(self, system):
        workload = generate_workload(512, 512, scale_divisor=65536)
        run = TritonJoin(system).run(workload)
        chart = gantt(run.sim)
        for phase in ("Part 1", "Part 2", "Join"):
            assert phase in chart

    def test_utilization_summary(self, sim_result):
        result, pool = sim_result
        summary = utilization_summary(result, pool)
        assert "link" in summary
        assert "%" in summary


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out
        assert "ext_interconnect" in out

    def test_run_single_experiment(self, capsys):
        assert cli_main(["fig06"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6(a)" in out

    def test_run_with_sizes_and_divisor(self, capsys):
        code = cli_main(["fig01", "--sizes", "128,2048", "--divisor", "65536"])
        assert code == 0
        out = capsys.readouterr().out
        assert "128M" in out and "2048M" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestExplainFormat:
    def test_explain_format_renders_attribution(self, capsys):
        from repro.sim.visualize import main as viz_main

        code = viz_main(
            [
                "triton",
                "--size", "128",
                "--divisor", "1048576",
                "--format", "explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "explain: GPU Triton Join" in out
        assert "critical path" in out
        assert "bound classes" in out
        assert "invariant problems" not in out

    def test_explain_format_writes_file(self, tmp_path):
        from repro.sim.visualize import main as viz_main

        out = tmp_path / "explain.txt"
        code = viz_main(
            [
                "triton",
                "--size", "128",
                "--divisor", "1048576",
                "--format", "explain",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert "dominant bound class" in out.read_text()

    def test_explain_on_synthetic_result(self, sim_result):
        from repro import explain

        result, pool = sim_result
        explained = explain.explain(result, pool=pool, label="toy")
        assert explained.verify() == []
        # a saturates the link; b runs at half rate afterwards.
        assert explained.average_utilization["link"] > 0.5
        assert [s.record.name for s in explained.critical_path] == ["a", "b"]
