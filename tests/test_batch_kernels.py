"""Property tests: batched partition-wise kernels vs. reference loops.

The batched functional path (``repro.hashing.batch`` and
``repro.join.batched``) must be *byte-identical* to the per-partition
reference loops it replaces — same matched pairs, in the same order,
and identical simulated cost (counters and phase profiles), across
random fanouts, skew, duplicate keys, and empty partitions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generator import Workload, WorkloadConfig, generate_workload
from repro.data.relation import Relation
from repro.errors import ConfigurationError
from repro.hashing.batch import (
    expand_ranges,
    grouped_bucket_chaining_join,
    grouped_perfect_join,
)
from repro.hashing.bucket_chaining import BucketChainingTable
from repro.hashing.perfect import PerfectTable
from repro.hw.specs import ac922
from repro.join import run_cache
from repro.join.batched import batched_radix_join_arrays
from repro.join.cpu_partitioned import CpuPartitionedJoin
from repro.join.cpu_radix import CpuRadixJoin
from repro.join.multi_gpu import MultiGpuTritonJoin
from repro.join.triton import TritonJoin
from repro.partition.radix import partition_relation

SYSTEM = ac922()


@st.composite
def grouped_inputs(draw):
    """Random grouped build/probe arrays with empty groups and dup keys."""
    groups = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    skewed = draw(st.booleans())
    rng = np.random.default_rng(seed)
    key_space = draw(st.integers(min_value=1, max_value=64))

    def side(max_rows):
        # Some groups get zero rows: weight group choice unevenly.
        weights = rng.random(groups) ** (3.0 if skewed else 1.0)
        weights[rng.random(groups) < 0.3] = 0.0
        if weights.sum() == 0:
            weights[0] = 1.0
        rows = int(rng.integers(0, max_rows))
        g = rng.choice(groups, size=rows, p=weights / weights.sum())
        g.sort()  # partition-major layout: non-decreasing group ids
        keys = rng.integers(1, key_space + 1, size=rows)
        return g.astype(np.int64), keys.astype(np.int64)

    build_groups, build_keys = side(300)
    probe_groups, probe_keys = side(600)
    build_values = rng.integers(0, 2**40, size=len(build_keys)).astype(
        np.int64
    )
    return build_keys, build_values, build_groups, probe_keys, probe_groups


def _loop_reference(table_cls, build_keys, build_values, build_groups,
                    probe_keys, probe_groups, **table_kwargs):
    """Per-group table build/probe — the semantics batching must match."""
    out_idx, out_values = [], []
    groups = int(
        max(
            build_groups.max() if len(build_groups) else -1,
            probe_groups.max() if len(probe_groups) else -1,
        )
        + 1
    )
    for g in range(groups):
        b = build_groups == g
        p = np.nonzero(probe_groups == g)[0]
        if not b.any() or len(p) == 0:
            continue
        table = table_cls(build_keys[b], build_values[b], **table_kwargs)
        idx, values = table.probe(probe_keys[p])
        out_idx.append(p[idx])
        out_values.append(values)
    if not out_idx:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(out_idx), np.concatenate(out_values)


class TestGroupedBucketChaining:
    @given(grouped_inputs(), st.sampled_from([1, 2, 64, 2048]))
    @settings(max_examples=60, deadline=None)
    def test_matches_per_group_table_loop(self, inputs, buckets):
        bk, bv, bg, pk, pg = inputs
        got_idx, got_values = grouped_bucket_chaining_join(
            bk, bv, bg, pk, pg, buckets=buckets
        )
        want_idx, want_values = _loop_reference(
            BucketChainingTable, bk, bv, bg, pk, pg, buckets=buckets
        )
        np.testing.assert_array_equal(got_idx, want_idx)
        np.testing.assert_array_equal(got_values, want_values)

    def test_empty_sides(self):
        empty = np.empty(0, dtype=np.int64)
        ones = np.ones(3, dtype=np.int64)
        for args in (
            (empty, empty, empty, ones, np.zeros(3, dtype=np.int64)),
            (ones, ones, np.zeros(3, dtype=np.int64), empty, empty),
        ):
            idx, values = grouped_bucket_chaining_join(*args)
            assert len(idx) == 0 and len(values) == 0

    def test_rejects_non_power_of_two_buckets(self):
        ones = np.ones(1, dtype=np.int64)
        with pytest.raises(ConfigurationError):
            grouped_bucket_chaining_join(ones, ones, ones, ones, ones,
                                         buckets=3)


class TestGroupedPerfect:
    @given(grouped_inputs())
    @settings(max_examples=60, deadline=None)
    def test_matches_per_group_table_loop(self, inputs):
        bk, bv, bg, pk, pg = inputs
        # Perfect hashing needs unique keys per group: dedupe within
        # groups, keeping first occurrences (stable, like the loop).
        seen = set()
        keep = np.zeros(len(bk), dtype=bool)
        for i, (g, k) in enumerate(zip(bg, bk)):
            if (g, k) not in seen:
                seen.add((g, k))
                keep[i] = True
        bk, bv, bg = bk[keep], bv[keep], bg[keep]
        got_idx, got_values = grouped_perfect_join(bk, bv, bg, pk, pg)
        want_idx, want_values = _loop_reference(
            PerfectTable, bk, bv, bg, pk, pg
        )
        np.testing.assert_array_equal(got_idx, want_idx)
        np.testing.assert_array_equal(got_values, want_values)

    def test_rejects_duplicate_keys_within_group(self):
        keys = np.array([5, 5], dtype=np.int64)
        groups = np.zeros(2, dtype=np.int64)
        with pytest.raises(ConfigurationError):
            grouped_perfect_join(keys, keys, groups, keys, groups)

    def test_duplicate_keys_in_distinct_groups_are_fine(self):
        keys = np.array([5, 5], dtype=np.int64)
        values = np.array([10, 20], dtype=np.int64)
        groups = np.array([0, 1], dtype=np.int64)
        idx, got = grouped_perfect_join(
            keys, values, groups, keys, groups
        )
        np.testing.assert_array_equal(idx, [0, 1])
        np.testing.assert_array_equal(got, [10, 20])


class TestExpandRanges:
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 12)),
                    max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_matches_python_ranges(self, spans):
        starts = np.array([s for s, _ in spans], dtype=np.int64)
        ends = starts + np.array([n for _, n in spans], dtype=np.int64)
        owners, flat = expand_ranges(starts, ends)
        want_owners, want_flat = [], []
        for i, (s, e) in enumerate(zip(starts, ends)):
            for j in range(s, e):
                want_owners.append(i)
                want_flat.append(j)
        np.testing.assert_array_equal(owners, want_owners)
        np.testing.assert_array_equal(flat, want_flat)


@st.composite
def pk_fk_relations(draw, min_probe_rows=0):
    """Random PK/FK relation pairs (dense build keys, skewable probes)."""
    build_rows = draw(st.integers(min_value=1, max_value=1500))
    probe_rows = draw(st.integers(min_value=min_probe_rows, max_value=3000))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    skew = draw(st.sampled_from([0.0, 0.5, 1.1]))
    rng = np.random.default_rng(seed)
    build_keys = rng.permutation(build_rows).astype(np.int64) + 1
    if probe_rows and skew:
        ranks = rng.zipf(1.0 + skew, size=probe_rows)
        probe_keys = ((ranks - 1) % int(build_rows * 1.5 + 1) + 1).astype(
            np.int64
        )
    else:
        probe_keys = rng.integers(
            1, int(build_rows * 1.5) + 2, size=probe_rows
        ).astype(np.int64)
    build = Relation(
        build_keys,
        {"attr0": rng.integers(0, 2**40, build_rows).astype(np.int64)},
        name="R",
    )
    probe = Relation(
        probe_keys,
        {"attr0": rng.integers(0, 2**40, probe_rows).astype(np.int64)},
        name="S",
    )
    return build, probe


class TestBatchedRadixJoin:
    @given(pk_fk_relations(), st.integers(1, 8), st.integers(0, 4))
    @settings(max_examples=60, deadline=None)
    def test_matches_partitioned_loop(self, relations, bits1, bits2):
        """Byte-identical pairs vs. the two-pass per-partition loop."""
        build, probe = relations
        got_keys, got_values = batched_radix_join_arrays(
            build, probe, bits1, bits2
        )
        build_parts = partition_relation(build, bits1)
        probe_parts = partition_relation(probe, bits1)
        want_keys, want_values = [], []
        for index in range(build_parts.fanout):
            b_rows = build_parts.partition_rows(index)
            p_rows = probe_parts.partition_rows(index)
            if b_rows.stop == b_rows.start or p_rows.stop == p_rows.start:
                continue
            build_i = build_parts.relation.take(
                np.arange(b_rows.start, b_rows.stop)
            )
            probe_i = probe_parts.relation.take(
                np.arange(p_rows.start, p_rows.stop)
            )
            if bits2 > 0:
                build_i = partition_relation(
                    build_i, bits2, offset=bits1
                ).relation
                probe_i = partition_relation(
                    probe_i, bits2, offset=bits1
                ).relation
            table = BucketChainingTable(
                build_i.keys, build_i.payloads["attr0"]
            )
            idx, values = table.probe(probe_i.keys)
            want_keys.append(probe_i.keys[idx])
            want_values.append(values)
        if want_keys:
            want_keys = np.concatenate(want_keys)
            want_values = np.concatenate(want_values)
        else:
            want_keys = np.empty(0, dtype=np.int64)
            want_values = np.empty(0, dtype=np.int64)
        np.testing.assert_array_equal(got_keys, want_keys)
        np.testing.assert_array_equal(got_values, want_values)


def _workload(build, probe):
    config = WorkloadConfig(
        build_m_tuples=max(len(build), 1) / 1e6,
        probe_m_tuples=max(len(probe), 1) / 1e6,
    )
    return Workload(config=config, build=build, probe=probe)


@pytest.mark.parametrize(
    "make_operator",
    [
        lambda: CpuRadixJoin(SYSTEM),
        lambda: TritonJoin(SYSTEM),
        lambda: CpuPartitionedJoin(SYSTEM),
    ],
    ids=["cpu_radix", "triton", "cpu_partitioned"],
)
class TestOperatorsBatchedVsReference:
    @given(relations=pk_fk_relations(min_probe_rows=1))
    @settings(max_examples=15, deadline=None)
    def test_identical_match_and_cost(self, make_operator, relations):
        """Batched and reference modes agree on results AND simulation."""
        build, probe = relations
        workload = _workload(build, probe)
        batched_op = make_operator()
        reference_op = make_operator()
        reference_op.reference = True
        a = batched_op.run(workload)
        b = reference_op.run(workload)
        assert a.match == b.match
        assert a.seconds == b.seconds
        assert a.counters == b.counters
        assert a.sim.phase_seconds() == b.sim.phase_seconds()
        assert a.sim.resource_busy_units == b.sim.resource_busy_units


def test_multi_gpu_batched_vs_reference():
    workload = generate_workload(64, 128, scale_divisor=1024, seed=11)
    a = MultiGpuTritonJoin(SYSTEM).run(workload)
    b = MultiGpuTritonJoin(SYSTEM, reference=True).run(workload)
    assert a.match == b.match
    assert a.seconds == b.seconds
    assert a.counters == b.counters


class TestRunCache:
    def setup_method(self):
        run_cache.clear()

    def teardown_method(self):
        run_cache.disable()
        run_cache.clear()

    def test_disabled_by_default(self):
        workload = generate_workload(1, 1, seed=3)
        CpuRadixJoin(SYSTEM).run(workload)
        assert run_cache.stats == {
            "hits": 0, "misses": 0, "plan_hits": 0, "plan_misses": 0
        }

    def test_hit_returns_equal_run(self):
        run_cache.enable()
        workload = generate_workload(1, 1, seed=3)
        operator = CpuRadixJoin(SYSTEM)
        first = operator.run(workload)
        second = operator.run(workload)
        assert run_cache.stats == {
            "hits": 1, "misses": 1, "plan_hits": 0, "plan_misses": 0
        }
        assert second.match == first.match
        assert second.seconds == first.seconds
        assert second.counters == first.counters

    def test_distinct_config_misses(self):
        run_cache.enable()
        workload = generate_workload(1, 1, seed=3)
        CpuRadixJoin(SYSTEM).run(workload)
        CpuRadixJoin(SYSTEM, reference=True).run(workload)
        assert run_cache.stats == {
            "hits": 0, "misses": 2, "plan_hits": 0, "plan_misses": 0
        }

    def test_distinct_workload_misses(self):
        run_cache.enable()
        operator = CpuRadixJoin(SYSTEM)
        operator.run(generate_workload(1, 1, seed=3))
        operator.run(generate_workload(1, 1, seed=4))
        assert run_cache.stats == {
            "hits": 0, "misses": 2, "plan_hits": 0, "plan_misses": 0
        }

    def test_notes_do_not_poison_cache(self):
        run_cache.enable()
        workload = generate_workload(1, 1, seed=3)
        operator = CpuRadixJoin(SYSTEM)
        first = operator.run(workload)
        first.notes["scratch"] = "local annotation"
        second = operator.run(workload)
        assert "scratch" not in second.notes

    def test_freeze_rejects_unfreezable(self):
        with pytest.raises(run_cache.UnfreezableError):
            run_cache.freeze(lambda: None)
