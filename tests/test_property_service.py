"""Property tests for the query layer and the service's hygiene.

Three invariant families, Hypothesis-driven:

- **Spec round-trip + functional reference.** Any generated plan spec
  survives a JSON round trip with an identical result checksum, and the
  plan's join match equals a numpy reference computed directly from the
  generated arrays (the plan layer adds structure, never rows).
- **Deterministic admission.** A query is rejected iff its spec-derived
  estimate exceeds the budget — a pure function of (spec, budget),
  regardless of worker count, submission order, or cancellation.
- **No leaks under any interleaving.** Whatever mix of submissions,
  priorities, and cancellations runs, shutdown leaves no service
  threads, no ambient fault plan or exec config, no thread-local event
  context, and no run-cache entries (the conftest guards then re-check
  the ambient ones after every test).
"""

from __future__ import annotations

import json
import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults, reference_join
from repro.data.generator import generate_pk_fk
from repro.exec import context as exec_context
from repro.join import run_cache
from repro.service import (
    JoinService,
    estimate_query_bytes,
    execute_plan,
    validate_spec,
)
from repro.telemetry import events

SCALE = 65536


@st.composite
def plan_specs(draw):
    """A valid plan spec plus the probe-row mask it implies."""
    workload = {
        "build_m_tuples": draw(st.sampled_from([16, 32, 64])),
        "probe_m_tuples": draw(st.sampled_from([16, 64, 128])),
        "scale_divisor": SCALE,
        "seed": draw(st.integers(min_value=0, max_value=50)),
    }
    probe = {"op": "scan", "relation": "probe"}
    shape = draw(
        st.sampled_from(["plain", "filter", "partition", "batches"])
    )
    mask_fields = None
    if shape == "filter":
        predicate = draw(
            st.sampled_from(["semijoin", "modulo", "key_range"])
        )
        node = {"op": "filter", "predicate": predicate, "input": probe}
        if predicate == "modulo":
            node["divisor"] = draw(st.integers(min_value=2, max_value=8))
            node["remainder"] = draw(
                st.integers(min_value=0, max_value=node["divisor"] - 1)
            )
        elif predicate == "key_range":
            node["lo"] = draw(st.integers(min_value=0, max_value=100))
            node["hi"] = node["lo"] + draw(
                st.integers(min_value=1, max_value=20000)
            )
        mask_fields = node
        probe = node
    elif shape == "partition":
        probe = {
            "op": "partition",
            "bits": draw(st.integers(min_value=1, max_value=8)),
            "input": probe,
        }
    elif shape == "batches":
        probe = {
            "op": "scan",
            "relation": "probe",
            "batches": draw(st.integers(min_value=2, max_value=6)),
        }
    root = {
        "op": "join",
        "algorithm": draw(
            st.sampled_from(["triton", "cpu-radix", "bloom-triton"])
        ),
        "build": {"op": "scan", "relation": "build"},
        "probe": probe,
    }
    if draw(st.booleans()):
        root = {
            "op": "groupby",
            "function": draw(st.sampled_from(["sum", "count"])),
            "input": root,
        }
    return {"name": "prop", "workload": workload, "root": root}, mask_fields


def probe_mask(build, probe, mask_fields):
    if mask_fields is None:
        return np.ones(len(probe), dtype=bool)
    predicate = mask_fields["predicate"]
    if predicate == "semijoin":
        return np.isin(probe.keys, build.keys)
    if predicate == "key_range":
        return (probe.keys >= mask_fields["lo"]) & (
            probe.keys < mask_fields["hi"]
        )
    return probe.keys % mask_fields["divisor"] == mask_fields["remainder"]


@given(plan_specs())
@settings(max_examples=12, deadline=None)
def test_round_trip_and_functional_reference(system, drawn):
    spec, mask_fields = drawn
    result = execute_plan(spec, system=system)
    round_tripped = execute_plan(
        json.loads(json.dumps(spec)), system=system
    )
    assert round_tripped.checksum == result.checksum
    assert round_tripped.seconds == result.seconds

    config = validate_spec(spec)
    build, probe = generate_pk_fk(config)
    mask = probe_mask(build, probe, mask_fields)
    expected = reference_join(build, probe.take(np.nonzero(mask)[0]))
    assert result.match == expected


def _small(seed):
    return {
        "name": "small",
        "workload": {
            "build_m_tuples": 32,
            "probe_m_tuples": 32,
            "scale_divisor": SCALE,
            "seed": seed,
        },
        "root": {
            "op": "join",
            "build": {"op": "scan", "relation": "build"},
            "probe": {"op": "scan", "relation": "probe"},
        },
    }


def _big(seed):
    big = _small(seed)
    big["name"] = "big"
    big["workload"]["build_m_tuples"] = 2048
    big["workload"]["probe_m_tuples"] = 2048
    return big


def _service_threads():
    return [
        thread
        for thread in threading.enumerate()
        if thread.name.startswith("join-service-")
    ]


@given(
    actions=st.lists(
        st.tuples(
            st.booleans(),  # big (over budget) or small
            st.integers(min_value=0, max_value=3),  # priority
            st.booleans(),  # cancel right after submit
        ),
        min_size=1,
        max_size=8,
    ),
    workers=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=12, deadline=None)
def test_interleavings_admit_deterministically_and_never_leak(
    system, actions, workers, seed
):
    small, big = _small(seed), _big(seed)
    budget = estimate_query_bytes(small) * 2
    assert estimate_query_bytes(big) > budget

    service = JoinService(
        system=system, workers=workers, memory_budget_bytes=budget
    )
    handles = []
    try:
        for is_big, priority, cancel in actions:
            spec = big if is_big else small
            handle = service.submit(spec, priority=priority)
            if cancel:
                handle.cancel()
            handles.append((is_big, cancel, handle))
    finally:
        service.shutdown(wait=True)

    for is_big, cancel, handle in handles:
        assert handle.done()
        # Admission is a pure function of (spec, budget): over-budget
        # specs are always rejected, in-budget ones never are.
        if is_big:
            assert handle.status == "rejected"
        elif cancel:
            # The cancel raced the worker; either way it resolved.
            assert handle.status in ("done", "cancelled")
        else:
            assert handle.status == "done"
        if handle.status == "done":
            assert handle.result().match is not None
            assert handle.metrics is not None

    # Nothing leaked: threads joined, ambient state clean, cache empty.
    assert _service_threads() == []
    assert faults.active() is None
    assert exec_context.active() is None
    assert events.context_fields() == {}
    assert run_cache.size() == 0
    stats = service.stats()
    assert stats["submitted"] == len(actions)
    assert stats["rejected"] == sum(1 for a in actions if a[0])
