"""Unit tests for the benchmark harness (repro.bench)."""

import pytest

from repro.bench.harness import ExperimentTable, format_table, series_ratio
from repro.bench.workloads import default_workload
from repro.errors import ConfigurationError


@pytest.fixture
def table():
    t = ExperimentTable(
        experiment="demo",
        title="Demo table",
        columns=["a", "b"],
        unit="G tuples/s",
    )
    t.add_row("fast", {"a": 2.0, "b": 4.0})
    t.add_row("slow", {"a": 1.0, "b": 0.0001})
    t.add_note("a note")
    return t


class TestExperimentTable:
    def test_row_lookup(self, table):
        assert table.row("fast").get("a") == 2.0

    def test_missing_row(self, table):
        with pytest.raises(ConfigurationError):
            table.row("ghost")

    def test_column(self, table):
        assert table.column("a") == [2.0, 1.0]

    def test_missing_column(self, table):
        with pytest.raises(ConfigurationError):
            table.column("ghost")

    def test_unknown_column_in_row_rejected(self, table):
        with pytest.raises(ConfigurationError):
            table.add_row("bad", {"c": 1.0})

    def test_partial_rows_render_as_dash(self):
        t = ExperimentTable("e", "t", ["a", "b"])
        t.add_row("r", {"a": 1.0})
        assert t.row("r").get("b") is None
        assert "-" in t.format()

    def test_series_ratio(self, table):
        ratios = series_ratio(table, "fast", "slow")
        assert ratios[0] == pytest.approx(2.0)


class TestFormatting:
    def test_contains_title_and_unit(self, table):
        text = format_table(table)
        assert "Demo table" in text
        assert "[G tuples/s]" in text

    def test_contains_rows_and_notes(self, table):
        text = format_table(table)
        assert "fast" in text and "slow" in text
        assert "note: a note" in text

    def test_scientific_for_tiny_values(self, table):
        assert "1.00e-04" in format_table(table)

    def test_alignment_consistent(self, table):
        lines = format_table(table).splitlines()
        body = [l for l in lines if "|" in l]
        widths = {len(l) for l in body}
        assert len(widths) == 1


class TestDefaultWorkload:
    def test_cached_instances_are_shared(self):
        a = default_workload(128, 128)
        b = default_workload(128, 128)
        assert a is b

    def test_nominal_size(self):
        workload = default_workload(128, 128)
        assert workload.build.nominal_rows == 128_000_000

    def test_probe_defaults_to_build(self):
        workload = default_workload(64)
        assert workload.probe.nominal_rows == workload.build.nominal_rows
