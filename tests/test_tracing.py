"""Trace contexts: deterministic ids, propagation, forest validation.

The properties the end-to-end tracing story rests on:

1. ids are pure functions of (seed, sequence) and span position, so a
   seeded run reproduces its whole id forest;
2. ambient propagation is per-thread (concurrent service workers never
   cross-parent) and survives the drain/absorb hop into pool workers;
3. ``validate_trace_tree`` rejects every malformation the CI gate is
   meant to catch (bad ids, orphans, cycles, duplicates);
4. the Chrome export round-trips the forest
   (``validate_chrome_trace_tree`` re-validates from the document).
"""

import threading

import pytest

from repro.telemetry import events, export, tracing
from repro.telemetry.export import chrome_trace_document, validate_chrome_trace


@pytest.fixture
def traced():
    """Tracing on with an empty buffer; always off again afterwards."""
    tracing.enable()
    tracing.reset()
    yield tracing
    tracing.disable()
    tracing.reset()


class TestDeterministicIds:
    def test_trace_id_is_a_pure_function_of_seed_and_sequence(self):
        assert tracing.derive_trace_id(0, 7) == tracing.derive_trace_id(0, 7)
        assert tracing.derive_trace_id(0, 7) != tracing.derive_trace_id(0, 8)
        assert tracing.derive_trace_id(1, 7) != tracing.derive_trace_id(0, 7)

    def test_ids_are_sixteen_hex_chars(self):
        trace_id = tracing.derive_trace_id(3, 11)
        assert tracing.is_valid_id(trace_id)
        assert tracing.is_valid_id(
            tracing.derive_span_id(trace_id, None, "query", 0)
        )
        assert tracing.is_valid_id(tracing.root_span_id(trace_id))

    def test_sibling_index_disambiguates_repeated_names(self):
        trace_id = tracing.derive_trace_id(0, 0)
        parent = tracing.root_span_id(trace_id)
        first = tracing.derive_span_id(trace_id, parent, "morsel", 0)
        second = tracing.derive_span_id(trace_id, parent, "morsel", 1)
        assert first != second

    def test_invalid_ids_rejected(self):
        for bad in (None, 17, "xyz", "0" * 15, "g" * 16, "0" * 17):
            assert not tracing.is_valid_id(bad)

    def test_same_run_reproduces_span_forest(self, traced):
        def run():
            trace_id = tracing.derive_trace_id(42, 5)
            with tracing.trace_query(trace_id):
                with tracing.span("execute"):
                    with tracing.span("morsel"):
                        pass
                    with tracing.span("morsel"):
                        pass
            drained = tracing.drain()
            return [(r["trace"], r["span"], r["parent"]) for r in drained]

        assert run() == run()


class TestAmbientPropagation:
    def test_spans_nest_under_the_active_query(self, traced):
        trace_id = tracing.derive_trace_id(0, 0)
        with tracing.trace_query(trace_id):
            with tracing.span("execute", worker=1):
                with tracing.span("Join(triton)"):
                    pass
        records = tracing.records()
        by_name = {record["name"]: record for record in records}
        assert set(by_name) == {"query", "execute", "Join(triton)"}
        root = by_name["query"]
        assert root["parent"] is None
        assert root["span"] == tracing.root_span_id(trace_id)
        assert by_name["execute"]["parent"] == root["span"]
        assert by_name["Join(triton)"]["parent"] == by_name["execute"]["span"]
        assert {record["trace"] for record in records} == {trace_id}
        assert by_name["execute"]["attrs"] == {"worker": 1}
        assert tracing.validate_trace_tree(records) == []

    def test_span_is_noop_when_disabled_or_off_trace(self):
        tracing.disable()
        assert tracing.span("x") is tracing.NULL_TRACE_SPAN
        tracing.enable()
        try:
            # Enabled but no ambient trace on this thread: still a no-op.
            assert tracing.span("x") is tracing.NULL_TRACE_SPAN
            assert tracing.current() is None
            assert tracing.payload() is None
        finally:
            tracing.disable()

    def test_span_outside_trace_records_nothing(self, traced):
        with tracing.span("orphan"):
            pass
        assert tracing.records() == []

    def test_concurrent_threads_do_not_cross_parent(self, traced):
        barrier = threading.Barrier(2)
        trace_ids = [
            tracing.derive_trace_id(0, 0),
            tracing.derive_trace_id(0, 1),
        ]

        def worker(trace_id):
            with tracing.trace_query(trace_id):
                barrier.wait(timeout=10)
                with tracing.span("execute"):
                    barrier.wait(timeout=10)

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in trace_ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        records = tracing.records()
        assert tracing.validate_trace_tree(records) == []
        grouped = tracing.by_trace(records)
        assert set(grouped) == set(trace_ids)
        for trace_id, spans in grouped.items():
            # Each trace's execute parents under its own root — never
            # the other thread's.
            by_name = {record["name"]: record for record in spans}
            assert by_name["execute"]["parent"] == by_name["query"]["span"]

    def test_exception_unwinding_still_records_the_span(self, traced):
        trace_id = tracing.derive_trace_id(0, 0)
        with pytest.raises(RuntimeError, match="boom"):
            with tracing.trace_query(trace_id):
                with tracing.span("execute"):
                    raise RuntimeError("boom")
        names = sorted(r["name"] for r in tracing.records())
        assert names == ["execute", "query"]
        assert tracing.validate_trace_tree(tracing.records()) == []

    def test_record_span_backdates_intervals(self, traced):
        trace_id = tracing.derive_trace_id(0, 3)
        start = tracing.wall_now()
        end = start + 0.25
        record = tracing.record_span(
            "admission-wait",
            start,
            end,
            trace_id=trace_id,
            parent_id=tracing.root_span_id(trace_id),
            query="q3",
        )
        assert record["dur"] == pytest.approx(0.25)
        assert record["attrs"] == {"query": "q3"}
        # Negative intervals clamp rather than corrupting the timeline.
        clamped = tracing.record_span(
            "skewed", end, start, trace_id=trace_id
        )
        assert clamped["dur"] == 0.0

    def test_wall_now_is_monotonic(self):
        stamps = [tracing.wall_now() for _ in range(100)]
        assert stamps == sorted(stamps)


class TestCrossProcessContract:
    """payload/activate + drain/absorb — the pool-worker hop, simulated."""

    def test_payload_round_trip_reparents_worker_spans(self, traced):
        trace_id = tracing.derive_trace_id(0, 0)
        with tracing.trace_query(trace_id):
            with tracing.span("execute"):
                shipped = tracing.payload()
        assert shipped == {
            "trace": trace_id,
            "span": tracing.derive_span_id(
                trace_id, tracing.root_span_id(trace_id), "execute", 0
            ),
        }
        parent_records = tracing.drain()

        # "Worker process": fresh buffer, adopts the shipped context.
        with tracing.activate(shipped["trace"], shipped["span"]):
            with tracing.span("morsel[0]", worker=0):
                pass
            with tracing.span("morsel[1]", worker=1):
                pass
        worker_records = tracing.drain()
        assert {r["parent"] for r in worker_records} == {shipped["span"]}

        # Parent absorbs the worker's records: one well-formed tree.
        tracing.absorb(parent_records)
        assert tracing.absorb(worker_records) == 2
        merged = tracing.records()
        assert tracing.validate_trace_tree(merged) == []
        assert len(tracing.by_trace(merged)[trace_id]) == 4

    def test_activate_does_not_rerecord_the_adopted_span(self, traced):
        trace_id = tracing.derive_trace_id(0, 0)
        with tracing.activate(trace_id, tracing.root_span_id(trace_id)):
            pass
        assert tracing.records() == []

    def test_absorb_tolerates_empty(self, traced):
        assert tracing.absorb(None) == 0
        assert tracing.absorb([]) == 0


class TestForestValidation:
    def _forest(self):
        trace_id = tracing.derive_trace_id(0, 0)
        root = tracing.root_span_id(trace_id)
        child = tracing.derive_span_id(trace_id, root, "execute", 0)
        return [
            {"trace": trace_id, "span": root, "parent": None, "name": "query"},
            {"trace": trace_id, "span": child, "parent": root,
             "name": "execute"},
        ]

    def test_well_formed_forest_passes(self):
        assert tracing.validate_trace_tree(self._forest()) == []

    def test_invalid_ids_flagged(self):
        records = self._forest()
        records[0]["trace"] = "nope"
        records[1]["span"] = 12
        problems = tracing.validate_trace_tree(records)
        assert any("invalid trace id" in p for p in problems)
        assert any("invalid span id" in p for p in problems)

    def test_orphan_parent_flagged(self):
        records = self._forest()
        records[1]["parent"] = "f" * 16
        assert any(
            "orphan parent" in p
            for p in tracing.validate_trace_tree(records)
        )

    def test_duplicate_span_id_flagged(self):
        records = self._forest()
        records.append(dict(records[1]))
        assert any(
            "repeats span id" in p
            for p in tracing.validate_trace_tree(records)
        )

    def test_parent_cycle_flagged(self):
        trace_id = tracing.derive_trace_id(0, 0)
        a = tracing.derive_span_id(trace_id, None, "a", 0)
        b = tracing.derive_span_id(trace_id, None, "b", 0)
        records = [
            {"trace": trace_id, "span": a, "parent": b, "name": "a"},
            {"trace": trace_id, "span": b, "parent": a, "name": "b"},
        ]
        assert any(
            "cycle" in p for p in tracing.validate_trace_tree(records)
        )


class TestChromeExport:
    def test_export_round_trips_through_document_validation(self, traced):
        for sequence in range(2):
            trace_id = tracing.derive_trace_id(0, sequence)
            with tracing.trace_query(trace_id, query=f"q{sequence}"):
                with tracing.span("execute"):
                    pass
        document = chrome_trace_document(
            events=tracing.chrome_events(tracing.records())
        )
        assert validate_chrome_trace(document) == []
        assert tracing.validate_chrome_trace_tree(document) == []
        spans = [
            event
            for event in document["traceEvents"]
            if event.get("cat") == "trace" and event.get("ph") == "X"
        ]
        assert len(spans) == 4
        # One swimlane (tid) per trace within the process.
        assert len({event["tid"] for event in spans}) == 2

    def test_document_validation_catches_a_broken_forest(self):
        trace_id = tracing.derive_trace_id(0, 0)
        span_id = tracing.root_span_id(trace_id)
        document = chrome_trace_document(
            events=[
                {
                    "name": "query",
                    "cat": "trace",
                    "ph": "X",
                    "ts": 0.0,
                    "dur": 1.0,
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        "trace": trace_id,
                        "span": span_id,
                        "parent": "f" * 16,  # orphan
                    },
                }
            ]
        )
        assert any(
            "orphan" in p
            for p in tracing.validate_chrome_trace_tree(document)
        )

    def test_empty_document_is_flagged(self):
        assert tracing.validate_chrome_trace_tree({"traceEvents": []}) == [
            "document has no cat='trace' span events"
        ]

    def test_jsonl_sink_sorts_by_time(self, traced, tmp_path):
        trace_id = tracing.derive_trace_id(0, 0)
        now = tracing.wall_now()
        tracing.record_span("late", now + 1.0, now + 2.0, trace_id=trace_id)
        tracing.record_span("early", now, now + 0.5, trace_id=trace_id)
        path = tmp_path / "trace.jsonl"
        assert tracing.write_jsonl(path) == 2
        names = [
            line.split('"name": "')[1].split('"')[0]
            for line in path.read_text().splitlines()
        ]
        assert names == ["early", "late"]


class TestServiceIntegration:
    """The tentpole contract, at test scale: queries through the real
    JoinService produce one well-formed span tree each, and every
    lifecycle event carries its query's trace id."""

    def _spec(self, seed=1):
        return {
            "name": "tiny",
            "workload": {
                "build_m_tuples": 64,
                "probe_m_tuples": 64,
                "scale_divisor": 65536,
                "seed": seed,
            },
            "root": {
                "op": "join",
                "algorithm": "triton",
                "build": {"op": "scan", "relation": "build"},
                "probe": {"op": "scan", "relation": "probe"},
            },
        }

    def test_traced_service_run_builds_one_tree_per_query(self, traced):
        from repro.service.server import JoinService

        events.enable()
        events.reset()
        service = JoinService(workers=2)
        try:
            handles = [
                service.submit(self._spec(seed)) for seed in (1, 2, 3)
            ]
            for handle in handles:
                handle.result()
            recorded = events.events()
        finally:
            service.shutdown(wait=True)
            events.disable()
            events.reset()

        records = tracing.records()
        assert tracing.validate_trace_tree(records) == []
        grouped = tracing.by_trace(records)
        trace_ids = {handle.trace_id for handle in handles}
        assert len(trace_ids) == 3
        assert set(grouped) == trace_ids
        for handle in handles:
            names = {r["name"] for r in grouped[handle.trace_id]}
            assert {"query", "compile", "admission-wait", "execute"} <= names
            roots = [
                r for r in grouped[handle.trace_id] if r["parent"] is None
            ]
            assert len(roots) == 1 and roots[0]["name"] == "query"
            assert roots[0]["attrs"]["status"] == "done"

        # Every lifecycle event carries its query's (valid) trace id.
        lifecycle = [
            e for e in recorded if e["type"].startswith("query.")
        ]
        assert len(lifecycle) == 12  # submitted/admitted/started/finished x3
        assert all(tracing.is_valid_id(e.get("trace")) for e in lifecycle)
        assert {e["trace"] for e in lifecycle} == trace_ids

    def test_untraced_service_run_records_nothing(self):
        from repro.service.server import JoinService

        tracing.disable()
        tracing.reset()
        service = JoinService(workers=1)
        try:
            handle = service.submit(self._spec())
            handle.result()
        finally:
            service.shutdown(wait=True)
        assert handle.trace_id is None
        assert tracing.records() == []

    def test_trace_ids_reproduce_across_runs(self, traced):
        from repro.service.server import JoinService

        def run():
            tracing.reset()
            service = JoinService(workers=1)
            try:
                handles = [
                    service.submit(self._spec(seed)) for seed in (5, 6)
                ]
                for handle in handles:
                    handle.result()
            finally:
                service.shutdown(wait=True)
            return [handle.trace_id for handle in handles]

        first, second = run(), run()
        assert first == second
        assert all(tracing.is_valid_id(tid) for tid in first)


class TestEventTagging:
    def test_events_inside_a_trace_carry_the_context(self, traced):
        events.enable()
        events.reset()
        try:
            trace_id = tracing.derive_trace_id(0, 0)
            with tracing.trace_query(trace_id):
                events.emit("run.start", operator="t")
            events.emit("run.end", operator="t", seconds=0.1,
                        cache_hit=False)
            recorded = events.events()
        finally:
            events.disable()
            events.reset()
        tagged = [e for e in recorded if e["type"] == "run.start"]
        untagged = [e for e in recorded if e["type"] == "run.end"]
        assert tagged[0]["trace"] == trace_id
        assert tagged[0]["span"] == tracing.root_span_id(trace_id)
        assert "trace" not in untagged[0]
        assert set(events.by_trace(recorded)) == {trace_id, ""}

    def test_sim_tracks_tagged_with_owning_trace(self, traced):
        trace_id = tracing.derive_trace_id(0, 0)
        with tracing.trace_query(trace_id):
            sim_events = export.sim_track_events(
                [("probe", "Join", 0.0, 1.0)],
                pid=10_000_001,
                label="test",
                trace=tracing.current_trace_id(),
            )
        spans = [e for e in sim_events if e.get("ph") == "X"]
        assert spans and all(
            e["args"]["trace"] == trace_id for e in spans
        )
