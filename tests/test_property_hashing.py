"""Property-based tests: hashing invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    BucketChainingTable,
    LinearProbingTable,
    fibonacci_hash,
    multiply_shift,
    murmur_mix,
)

keys_arrays = st.lists(
    st.integers(min_value=-(2**62), max_value=2**62), min_size=1, max_size=300
).map(lambda xs: np.array(xs, dtype=np.int64))

unique_keys_arrays = st.lists(
    st.integers(min_value=-(2**62), max_value=2**62),
    min_size=1,
    max_size=300,
    unique=True,
).map(lambda xs: np.array(xs, dtype=np.int64))


@given(keys_arrays, st.integers(min_value=1, max_value=63))
def test_hash_range_bounded_by_bits(keys, bits):
    for fn in (multiply_shift, fibonacci_hash, murmur_mix):
        hashed = fn(keys, bits=bits)
        assert hashed.min() >= 0
        assert hashed.max() < (1 << bits)


@given(keys_arrays)
def test_hashes_deterministic_and_nonnegative(keys):
    for fn in (multiply_shift, fibonacci_hash, murmur_mix):
        first = fn(keys)
        second = fn(keys)
        assert np.array_equal(first, second)
        assert (first >= 0).all()


@given(unique_keys_arrays)
@settings(max_examples=50, deadline=None)
def test_linear_probing_total_recall(keys):
    values = np.arange(len(keys), dtype=np.int64)
    table = LinearProbingTable(keys, values)
    idx, matched = table.probe(keys)
    # Every build key is found exactly once with its own value.
    assert len(idx) == len(keys)
    assert np.array_equal(matched[np.argsort(idx)], values)


@given(unique_keys_arrays, keys_arrays)
@settings(max_examples=50, deadline=None)
def test_schemes_agree_on_arbitrary_probes(build_keys, probe_keys):
    values = build_keys * np.int64(3)
    lp = LinearProbingTable(build_keys, values)
    bc = BucketChainingTable(build_keys, values)
    lp_result = sorted(zip(*(a.tolist() for a in lp.probe(probe_keys))))
    bc_result = sorted(zip(*(a.tolist() for a in bc.probe(probe_keys))))
    assert lp_result == bc_result


@given(unique_keys_arrays)
@settings(max_examples=50, deadline=None)
def test_probing_misses_only_absent_keys(build_keys):
    values = np.ones(len(build_keys), dtype=np.int64)
    table = LinearProbingTable(build_keys, values)
    absent = np.setdiff1d(
        np.arange(-50, 50, dtype=np.int64), build_keys
    )
    idx, _ = table.probe(absent)
    assert len(idx) == 0


@given(unique_keys_arrays)
@settings(max_examples=50, deadline=None)
def test_bucket_chaining_chains_conserve_rows(build_keys):
    table = BucketChainingTable(build_keys, build_keys)
    assert table.chain_lengths().sum() == len(build_keys)
