"""The concurrent join service: admission, scheduling, isolation.

Concurrency is constructed, never raced: the ``stage_hook`` seam holds
queries at known checkpoints, so every overlap these tests assert on is
deterministic. The last class is the regression for the conflation bug
class the service was built to prevent — two overlapping queries whose
metrics snapshots and event streams must not bleed into each other.
"""

from __future__ import annotations

import threading

import pytest

from repro import faults
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    PlanError,
    QueryCancelled,
    QueryTimeout,
)
from repro.service import JoinService, estimate_query_bytes, execute_plan
from repro.service.loadgen import run_load
from repro.telemetry import events

SCALE = 65536


def spec(name="q", algorithm="triton", **workload):
    base = {
        "build_m_tuples": 64,
        "probe_m_tuples": 64,
        "scale_divisor": SCALE,
        "seed": 3,
    }
    base.update(workload)
    return {
        "name": name,
        "workload": base,
        "root": {
            "op": "join",
            "algorithm": algorithm,
            "build": {"op": "scan", "relation": "build"},
            "probe": {"op": "scan", "relation": "probe"},
        },
    }


@pytest.fixture(autouse=True)
def _clean_event_state():
    """Each test owns the flight recorder; leave it off and empty."""
    events.disable()
    events.reset()
    yield
    events.disable()
    events.reset()


class Blocker:
    """stage_hook that parks every query at its first checkpoint.

    ``arrived`` signals that some query reached the gate (i.e. a worker
    is now provably occupied), which is how tests serialize "submit the
    rest only once the head query holds the worker". ``release()`` lets
    the parked query — and every later one — run to completion.
    """

    def __init__(self):
        self.gate = threading.Event()
        self.arrived = threading.Event()
        self._seen = set()

    def __call__(self, handle, stage):
        if handle.id not in self._seen:
            self._seen.add(handle.id)
            self.arrived.set()
            assert self.gate.wait(30), f"{handle.id} never released"

    def release(self):
        self.gate.set()


class TestSerialPath:
    def test_single_query_byte_identical_to_direct_path(self, system):
        plan_spec = spec()
        direct = execute_plan(plan_spec, system=system)
        with JoinService(system=system, workers=1) as service:
            served = service.run(plan_spec)
        assert served.checksum == direct.checksum
        assert served.match == direct.match
        assert served.seconds == pytest.approx(direct.seconds, rel=1e-12)

    def test_invalid_spec_raises_at_submit(self, system):
        with JoinService(system=system, workers=1) as service:
            with pytest.raises(PlanError):
                service.submit({"workload": {}, "root": {"op": "nope"}})
            assert service.stats()["submitted"] == 0

    def test_submit_after_shutdown_refused(self, system):
        service = JoinService(system=system, workers=1)
        service.shutdown(wait=True)
        with pytest.raises(ConfigurationError):
            service.submit(spec())

    def test_handle_result_timeout_leaves_query_alive(self, system):
        blocker = Blocker()
        with JoinService(
            system=system, workers=1, stage_hook=blocker
        ) as service:
            handle = service.submit(spec())
            assert blocker.arrived.wait(30)
            with pytest.raises(TimeoutError):
                handle.result(timeout=0.01)
            assert not handle.done()
            blocker.release()
            assert handle.result(timeout=30).match is not None
            assert handle.status == "done"


class TestAdmission:
    def test_oversized_query_rejected_deterministically(self, system):
        small = spec()
        big = spec(name="big", build_m_tuples=4096, probe_m_tuples=4096)
        budget = estimate_query_bytes(small) + 1
        events.enable()
        with JoinService(
            system=system, workers=1, memory_budget_bytes=budget
        ) as service:
            rejected = service.submit(big)
            accepted = service.submit(small)
            assert rejected.done()
            assert rejected.status == "rejected"
            with pytest.raises(AdmissionError, match="exceeds budget"):
                rejected.result()
            assert accepted.result(timeout=30).match is not None
            stats = service.stats()
        assert stats["rejected"] == 1
        types = events.counts_by_type(events.events())
        assert types["query.rejected"] == 1
        assert types["query.admitted"] == 1

    def test_queue_limit_rejects_excess(self, system):
        blocker = Blocker()
        with JoinService(
            system=system, workers=1, queue_limit=1, stage_hook=blocker
        ) as service:
            head = service.submit(spec(name="head"))
            assert blocker.arrived.wait(30)
            # The worker holds `head`, so these stack up in the queue:
            # the first fills it, the second must be refused.
            queued = service.submit(spec(name="queued"))
            overflow = service.submit(spec(name="overflow"))
            assert overflow.status == "rejected"
            with pytest.raises(AdmissionError, match="queue full"):
                overflow.result()
            blocker.release()
            head.result(timeout=30)
            queued.result(timeout=30)

    def test_headroom_serializes_but_never_rejects(self, system):
        one = spec(name="one", seed=5)
        two = spec(name="two", seed=9)
        # Budget fits one query but not two: the second admitted query
        # must wait for headroom, not be rejected.
        budget = int(estimate_query_bytes(one) * 1.5)
        events.enable()
        with JoinService(
            system=system, workers=2, memory_budget_bytes=budget
        ) as service:
            handles = [service.submit(one), service.submit(two)]
            for handle in handles:
                assert handle.result(timeout=30).match is not None
        lifecycle = [
            event["type"]
            for event in events.sorted_events()
            if event["type"] in ("query.started", "query.finished")
        ]
        # Strictly serialized: start, finish, start, finish.
        assert lifecycle == [
            "query.started", "query.finished",
            "query.started", "query.finished",
        ]
        counts = events.counts_by_type(events.events())
        assert counts.get("query.rejected", 0) == 0


class TestPriorityAndCancellation:
    def test_priority_order_fifo_within_ties(self, system):
        blocker = Blocker()
        events.enable()
        with JoinService(
            system=system, workers=1, stage_hook=blocker
        ) as service:
            head = service.submit(spec(name="head"))
            assert blocker.arrived.wait(30)
            low = service.submit(spec(name="low"), priority=0)
            high_a = service.submit(spec(name="high-a"), priority=5)
            high_b = service.submit(spec(name="high-b"), priority=5)
            blocker.release()
            for handle in (head, low, high_a, high_b):
                handle.result(timeout=30)
        started = [
            event["query"]
            for event in events.sorted_events()
            if event["type"] == "query.started"
        ]
        # `head` ran first (it held the only worker); then priority
        # order, FIFO within the tied pair, the low-priority query last.
        assert started == [head.id, high_a.id, high_b.id, low.id]

    def test_cancel_queued_query_never_starts(self, system):
        blocker = Blocker()
        events.enable()
        with JoinService(
            system=system, workers=1, stage_hook=blocker
        ) as service:
            head = service.submit(spec(name="head"))
            assert blocker.arrived.wait(30)
            doomed = service.submit(spec(name="doomed"))
            assert doomed.cancel()
            blocker.release()
            head.result(timeout=30)
            with pytest.raises(QueryCancelled):
                doomed.result(timeout=30)
        assert doomed.status == "cancelled"
        started = [
            event["query"]
            for event in events.events()
            if event["type"] == "query.started"
        ]
        assert doomed.id not in started
        finished = {
            event["query"]: event["status"]
            for event in events.events()
            if event["type"] == "query.finished"
        }
        assert finished[doomed.id] == "cancelled"

    def test_cancel_running_query_stops_at_checkpoint(self, system):
        def cancel_self(handle, stage):
            handle.cancel()

        with JoinService(
            system=system, workers=1, stage_hook=cancel_self
        ) as service:
            handle = service.submit(spec())
            with pytest.raises(QueryCancelled, match="cancelled at"):
                handle.result(timeout=30)
        assert handle.status == "cancelled"

    def test_zero_timeout_deterministically_times_out(self, system):
        with JoinService(system=system, workers=1) as service:
            handle = service.submit(spec(), timeout=0.0)
            with pytest.raises(QueryTimeout, match="exceeded 0.0s"):
                handle.result(timeout=30)
        assert handle.status == "timeout"

    def test_cancel_after_done_is_a_noop(self, system):
        with JoinService(system=system, workers=1) as service:
            handle = service.submit(spec())
            handle.result(timeout=30)
            assert not handle.cancel()
            assert handle.status == "done"


class TestIsolationAndObservability:
    def test_events_tagged_with_query_id(self, system):
        events.enable()
        with JoinService(system=system, workers=1) as service:
            handle = service.submit(spec())
            handle.result(timeout=30)
        grouped = events.by_query(events.events())
        assert set(grouped) == {handle.id}
        types = events.counts_by_type(grouped[handle.id])
        assert types["query.submitted"] == 1
        assert types["query.started"] == 1
        assert types["query.finished"] == 1
        assert types["run.start"] >= 1
        assert events.validate_events(events.events()) == []

    def test_explain_query_carries_explanation(self, system):
        with JoinService(system=system, workers=2) as service:
            result = service.run(spec(), explain=True)
        explains = [
            stage for stage in result.stages
            if stage.get("stage") == "explain"
        ]
        assert len(explains) == 1
        assert explains[0]["text"].strip()

    def test_per_query_fault_plan_does_not_leak(self, system):
        plan = faults.FaultPlan(
            bandwidth=(
                faults.BandwidthFault(resource="nvlink_*", factor=0.25),
            )
        )
        with JoinService(system=system, workers=1) as service:
            clean = service.run(spec())
            faulted = service.run(spec(), fault_plan=plan)
            clean_again = service.run(spec())
        assert faults.active() is None
        # Degraded interconnect slows the simulated run but cannot
        # change the functional result.
        assert faulted.checksum == clean.checksum
        assert faulted.seconds > clean.seconds
        assert clean_again.seconds == pytest.approx(clean.seconds)

    def test_mini_load_is_deterministic_across_runs(self, system):
        first = run_load(queries=24, workers=3, seed=42)
        second = run_load(queries=24, workers=3, seed=42)
        assert first["deterministic"] == second["deterministic"]
        assert first["deterministic"]["incorrect"] == 0
        assert first["deterministic"]["failed"] == 0


class TestOverlapRegression:
    """Two concurrently-running queries must not conflate snapshots.

    The serial ``snapshot()``/``delta_since()`` pattern attributed
    whatever ran in between to the querying thread; the service's scoped
    registries and ambient event tags exist so that cannot happen. This
    pins it: both queries are provably in flight at the same time (a
    barrier at their first checkpoints), run different plans, and each
    handle's metrics and events must describe only its own plan.
    """

    def test_overlapping_queries_keep_metrics_and_events_apart(self, system):
        barrier = threading.Barrier(2, timeout=30)
        met = set()

        def rendezvous(handle, stage):
            if handle.id not in met:
                met.add(handle.id)
                barrier.wait()

        events.enable()
        with JoinService(
            system=system, workers=2, stage_hook=rendezvous
        ) as service:
            # One plain triton join (1 traced run) vs one bloom-filtered
            # join (2 traced runs: the wrapper and its inner join).
            plain = service.submit(spec(name="plain", seed=5))
            bloom = service.submit(
                spec(name="bloom", algorithm="bloom-triton", seed=9)
            )
            plain_result = plain.result(timeout=30)
            bloom_result = bloom.result(timeout=30)

        # Both queries really overlapped (the barrier released both).
        assert met == {plain.id, bloom.id}
        assert plain_result.checksum != bloom_result.checksum

        # Per-handle metrics snapshots: each counts only its own runs.
        plain_runs = plain.metrics["timings"]["join.run_seconds"]["count"]
        bloom_runs = bloom.metrics["timings"]["join.run_seconds"]["count"]
        assert plain_runs == 1
        assert bloom_runs == 2

        # Event streams: every operator event carries its query's tag,
        # and each query's stream describes only its own plan.
        grouped = events.by_query(events.events())
        assert set(grouped) == {plain.id, bloom.id}
        plain_ops = [
            event["operator"]
            for event in grouped[plain.id]
            if event["type"] == "run.start"
        ]
        bloom_ops = [
            event["operator"]
            for event in grouped[bloom.id]
            if event["type"] == "run.start"
        ]
        assert len(plain_ops) == 1
        assert len(bloom_ops) == 2
        for query_id in (plain.id, bloom.id):
            types = events.counts_by_type(grouped[query_id])
            assert types["query.started"] == 1
            assert types["query.finished"] == 1
