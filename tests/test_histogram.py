"""Mergeable histogram properties: shard merge exactness + quantile accuracy.

The two properties the fleet aggregation story rests on:

1. merging per-worker shards is *exactly* the histogram of the
   concatenated samples (bucket addition commutes and associates), and
2. a quantile estimate always lands within the exact value's bucket —
   one geometric bucket (a factor of ``10**(1/BUCKETS_PER_DECADE)``)
   is the error bound.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.histogram import (
    BOUNDS,
    BUCKETS_PER_DECADE,
    Histogram,
)

#: One bucket's geometric width — the documented quantile error bound.
BUCKET_FACTOR = 10.0 ** (1.0 / BUCKETS_PER_DECADE)

samples = st.lists(
    st.floats(min_value=1e-6, max_value=99.0, allow_nan=False),
    min_size=1,
    max_size=200,
)


def exact_quantile(values, q):
    """The rank-based quantile the estimator approximates."""
    ordered = sorted(values)
    rank = max(1, min(len(ordered), math.ceil(q * len(ordered))))
    return ordered[rank - 1]


class TestMergeIsConcatenation:
    @given(shards=st.lists(samples, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_merge_of_shards_equals_histogram_of_concatenation(self, shards):
        merged = Histogram()
        for shard in shards:
            merged.merge(Histogram().observe_many(shard))
        flat = Histogram().observe_many(
            [value for shard in shards for value in shard]
        )
        assert merged.buckets == flat.buckets
        assert merged.count == flat.count
        assert merged.total == pytest.approx(flat.total)
        assert merged.min == flat.min
        assert merged.max == flat.max
        assert merged.percentiles() == flat.percentiles()

    @given(a=samples, b=samples, c=samples)
    @settings(max_examples=40, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        def histogram(values):
            return Histogram().observe_many(values)

        left = histogram(a).merge(histogram(b)).merge(histogram(c))
        right = histogram(a).merge(histogram(b).merge(histogram(c)))
        assert left.buckets == right.buckets
        assert left.count == right.count
        assert left.min == right.min and left.max == right.max

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError, match="bounds"):
            Histogram().merge(Histogram(bounds=(1.0, 10.0)))


class TestQuantileAccuracy:
    @given(values=samples, q=st.sampled_from([0.5, 0.9, 0.99]))
    @settings(max_examples=120, deadline=None)
    def test_estimate_within_one_bucket_of_exact(self, values, q):
        histogram = Histogram().observe_many(values)
        exact = exact_quantile(values, q)
        estimate = histogram.quantile(q)
        # Same-bucket guarantee: the estimate is at most one geometric
        # bucket away from the exact rank value (1e-9 absolute slack
        # for float rounding at the bucket edges).
        assert estimate <= exact * BUCKET_FACTOR + 1e-9
        assert estimate >= exact / BUCKET_FACTOR - 1e-9
        # And never outside the observed range.
        assert min(values) - 1e-12 <= estimate <= max(values) + 1e-12

    def test_single_sample_is_exact(self):
        histogram = Histogram().observe_many([0.0421])
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.0421)

    def test_empty_histogram_reports_zero(self):
        histogram = Histogram()
        assert histogram.quantile(0.99) == 0.0
        assert histogram.mean == 0.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram().quantile(1.5)

    def test_overflow_bucket_clamps_to_max(self):
        histogram = Histogram().observe_many([150.0, 200.0, 250.0])
        assert histogram.quantile(0.99) <= 250.0

    @given(values=samples)
    @settings(max_examples=40, deadline=None)
    def test_quantiles_are_monotonic(self, values):
        histogram = Histogram().observe_many(values)
        p50, p90, p99 = (
            histogram.quantile(0.5),
            histogram.quantile(0.9),
            histogram.quantile(0.99),
        )
        assert p50 <= p90 <= p99


class TestFractionOver:
    """``count_below`` / ``fraction_over`` — the SLO burn-rate input."""

    def test_empty_histogram_has_no_overage(self):
        histogram = Histogram()
        assert histogram.count_below(1.0) == 0.0
        assert histogram.fraction_over(1.0) == 0.0

    def test_single_sample_sides(self):
        histogram = Histogram().observe_many([0.2])
        assert histogram.fraction_over(1.0) == 0.0
        assert histogram.fraction_over(0.1) == 1.0

    def test_known_mixture(self):
        histogram = Histogram().observe_many([0.1] * 90 + [2.0] * 10)
        assert histogram.fraction_over(1.0) == pytest.approx(0.1)
        assert histogram.fraction_over(0.01) == 1.0
        assert histogram.fraction_over(10.0) == 0.0

    @given(values=samples, threshold=st.floats(1e-6, 99.0))
    @settings(max_examples=80, deadline=None)
    def test_within_one_bucket_of_exact(self, values, threshold):
        histogram = Histogram().observe_many(values)
        fraction = histogram.fraction_over(threshold)
        assert 0.0 <= fraction <= 1.0
        # Exact bound: samples strictly over one bucket above the
        # threshold must be counted; samples at or below one bucket
        # under it must not be.
        certainly_over = sum(
            1 for v in values if v > threshold * BUCKET_FACTOR
        )
        certainly_under = sum(
            1 for v in values if v <= threshold / BUCKET_FACTOR
        )
        assert fraction * len(values) >= certainly_over - 1e-6
        assert fraction * len(values) <= len(values) - certainly_under + 1e-6

    @given(shards=st.lists(samples, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_merge_preserves_fraction(self, shards):
        merged = Histogram()
        for shard in shards:
            merged.merge(Histogram().observe_many(shard))
        flat = Histogram().observe_many(
            [value for shard in shards for value in shard]
        )
        for threshold in (0.01, 1.0, 50.0):
            assert merged.fraction_over(threshold) == pytest.approx(
                flat.fraction_over(threshold)
            )

    def test_count_below_is_monotonic(self):
        histogram = Histogram().observe_many([0.05, 0.5, 5.0, 50.0])
        counts = [
            histogram.count_below(t) for t in (0.01, 0.1, 1.0, 10.0, 100.0)
        ]
        assert counts == sorted(counts)
        assert counts[-1] == pytest.approx(4.0)


class TestSerialization:
    @given(values=samples)
    @settings(max_examples=30, deadline=None)
    def test_dict_round_trip(self, values):
        histogram = Histogram().observe_many(values)
        clone = Histogram.from_dict(histogram.to_dict())
        assert clone.buckets == histogram.buckets
        assert clone.count == histogram.count
        assert clone.percentiles() == histogram.percentiles()

    @given(values=samples)
    @settings(max_examples=30, deadline=None)
    def test_timing_round_trip(self, values):
        histogram = Histogram().observe_many(values)
        clone = Histogram.from_timing(histogram.to_timing())
        assert clone.buckets == histogram.buckets
        assert clone.percentiles() == histogram.percentiles()

    def test_from_timing_rejects_wrong_bucket_count(self):
        with pytest.raises(ValueError, match="buckets"):
            Histogram.from_timing({"count": 1, "buckets": [1, 2, 3]})

    def test_bounds_are_geometric(self):
        for lo, hi in zip(BOUNDS, BOUNDS[1:]):
            assert hi / lo == pytest.approx(BUCKET_FACTOR)
