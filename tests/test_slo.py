"""SLO specs, error budgets, burn rates, and the history anomaly sweep.

Burn-rate fixtures are hand-computed: the monitor's output must equal
the textbook definitions (budget = 1 - objective; burn rate =
bad_fraction / budget), not merely be self-consistent.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.slo import (
    ALL_TEMPLATES,
    SLOMonitor,
    SLOObjective,
    SLOSpec,
    default_spec,
    history_anomalies,
    load_spec,
)


class TestSpecValidation:
    def test_objective_must_be_a_fraction(self):
        for bad in (0.0, 1.0, 1.5, -0.1):
            with pytest.raises(ConfigurationError, match=r"\(0, 1\)"):
                SLOObjective(name="x", kind="errors", objective=bad)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kind"):
            SLOObjective(name="x", kind="uptime", objective=0.99)

    def test_latency_needs_a_positive_threshold(self):
        with pytest.raises(ConfigurationError, match="threshold_seconds"):
            SLOObjective(name="x", kind="latency", objective=0.99)
        with pytest.raises(ConfigurationError, match="threshold_seconds"):
            SLOObjective(
                name="x", kind="latency", objective=0.99,
                threshold_seconds=0.0,
            )

    def test_errors_objective_rejects_threshold(self):
        with pytest.raises(ConfigurationError, match="only"):
            SLOObjective(
                name="x", kind="errors", objective=0.99,
                threshold_seconds=1.0,
            )

    def test_nameless_objective_rejected(self):
        with pytest.raises(ConfigurationError, match="name"):
            SLOObjective(name="", kind="errors", objective=0.99)

    def test_duplicate_names_rejected(self):
        objective = SLOObjective(name="x", kind="errors", objective=0.99)
        with pytest.raises(ConfigurationError, match="duplicate"):
            SLOSpec(objectives=(objective, objective))

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fields"):
            SLOObjective.from_dict(
                {"name": "x", "kind": "errors", "objective": 0.99,
                 "window": "30d"}
            )

    def test_spec_dict_round_trip(self):
        spec = default_spec()
        clone = SLOSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_load_spec_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(default_spec().to_dict()))
        assert load_spec(path) == default_spec()

    def test_empty_objectives_list_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            SLOSpec.from_dict({"objectives": []})

    def test_error_budget_is_one_minus_objective(self):
        objective = SLOObjective(name="x", kind="errors", objective=0.999)
        assert objective.error_budget == pytest.approx(0.001)


class TestBurnRateMath:
    def test_errors_burn_rate_exact_fixture(self):
        # 1000 queries, 2 failures, 99.9% objective: budget 0.1%, bad
        # fraction 0.2% -> burn rate exactly 2.0, objective violated.
        monitor = SLOMonitor(
            SLOSpec(objectives=(
                SLOObjective(name="avail", kind="errors", objective=0.999),
            ))
        )
        for i in range(1000):
            monitor.record(
                "t", 0.01, error=(i < 2),
                status="failed" if i < 2 else "done",
            )
        verdict = monitor.evaluate(monitor.spec.objectives[0])
        assert verdict["total"] == 1000
        assert verdict["bad"] == 2.0
        assert verdict["bad_fraction"] == pytest.approx(0.002)
        assert verdict["error_budget"] == pytest.approx(0.001)
        assert verdict["burn_rate"] == pytest.approx(2.0)
        assert verdict["budget_consumed"] == 1.0  # capped
        assert not verdict["ok"]

    def test_exactly_at_budget_is_ok(self):
        # 1 failure in 1000 against 99.9%: burn rate 1.0, still within.
        monitor = SLOMonitor(
            {"objectives": [
                {"name": "avail", "kind": "errors", "objective": 0.999},
            ]}
        )
        for i in range(1000):
            monitor.record("t", 0.01, error=(i == 0))
        verdict = monitor.evaluate(monitor.spec.objectives[0])
        assert verdict["burn_rate"] == pytest.approx(1.0)
        assert verdict["ok"]

    def test_latency_burn_rate_fixture(self):
        # 90 fast + 10 slow against p95 under 1s: bad fraction 10%,
        # budget 5% -> burn rate 2.0.
        monitor = SLOMonitor(
            SLOSpec(objectives=(
                SLOObjective(
                    name="lat", kind="latency", objective=0.95,
                    threshold_seconds=1.0,
                ),
            ))
        )
        for _ in range(90):
            monitor.record("t", 0.1)
        for _ in range(10):
            monitor.record("t", 2.0)
        verdict = monitor.evaluate(monitor.spec.objectives[0])
        assert verdict["bad_fraction"] == pytest.approx(0.1)
        assert verdict["burn_rate"] == pytest.approx(2.0)
        assert not verdict["ok"]

    def test_latency_measured_over_successes_only(self):
        # A rejected query has no wall time: it burns the availability
        # budget, not the latency one.
        monitor = SLOMonitor(
            SLOSpec(objectives=(
                SLOObjective(
                    name="lat", kind="latency", objective=0.95,
                    threshold_seconds=1.0,
                ),
            ))
        )
        monitor.record("t", 0.1)
        monitor.record("t", 0.0, error=True, status="rejected")
        verdict = monitor.evaluate(monitor.spec.objectives[0])
        assert verdict["total"] == 1
        assert verdict["bad_fraction"] == 0.0
        assert verdict["ok"]

    def test_template_scoping(self):
        spec = SLOSpec(objectives=(
            SLOObjective(
                name="small-only", kind="errors", objective=0.5,
                template="small",
            ),
            SLOObjective(name="all", kind="errors", objective=0.5),
        ))
        monitor = SLOMonitor(spec)
        monitor.record("small", 0.1)
        monitor.record("big", 0.1, error=True, status="failed")
        scoped, unscoped = (
            monitor.evaluate(spec.objectives[0]),
            monitor.evaluate(spec.objectives[1]),
        )
        assert scoped["total"] == 1 and scoped["bad"] == 0.0
        assert unscoped["total"] == 2 and unscoped["bad"] == 1.0
        assert scoped["ok"] and unscoped["ok"]  # 50% budget holds both

    def test_empty_monitor_reports_zero_burn(self):
        monitor = SLOMonitor(default_spec())
        report = monitor.report()
        assert report["ok"]
        assert all(
            verdict["burn_rate"] == 0.0 for verdict in report["objectives"]
        )
        assert report["by_template"] == {}

    def test_report_shape(self):
        monitor = SLOMonitor(default_spec())
        monitor.record("t", 0.1)
        monitor.record("t", 0.2, error=True, status="timeout")
        report = monitor.report()
        assert report["kind"] == "slo-report"
        assert {v["name"] for v in report["objectives"]} == {
            "availability", "query-latency",
        }
        window = report["by_template"]["t"]
        assert window["total"] == 2
        assert window["errors"] == 1
        assert window["by_status"] == {"done": 1, "timeout": 1}

    def test_registry_metrics_use_label_keys(self):
        monitor = SLOMonitor(default_spec())
        for i in range(10):
            monitor.record("t", 0.01, error=(i == 0))
        metrics = monitor.registry_metrics()
        key = "service.slo.burn_rate{objective=availability}"
        assert metrics[key] == pytest.approx(0.1 / 0.001)

    def test_monitor_rejects_garbage_spec(self):
        with pytest.raises(ConfigurationError, match="SLOSpec"):
            SLOMonitor(["not", "a", "spec"])

    def test_default_spec_scopes_all_templates(self):
        assert all(
            objective.template == ALL_TEMPLATES
            for objective in default_spec().objectives
        )


class TestHistoryAnomalies:
    def _history(self, series):
        return {
            "entries": [
                {"timestamp": f"t{i}", "experiments": {"fig13": seconds}}
                for i, seconds in enumerate(series)
            ]
        }

    def test_clean_history_has_no_anomalies(self):
        assert history_anomalies(self._history([1.0, 1.1, 0.9, 1.0])) == []

    def test_blowup_after_enough_priors_is_flagged(self):
        anomalies = history_anomalies(
            self._history([1.0, 1.0, 1.0, 10.0]), factor=5.0
        )
        assert len(anomalies) == 1
        anomaly = anomalies[0]
        assert anomaly["experiment"] == "fig13"
        assert anomaly["entry"] == 3
        assert anomaly["seconds"] == 10.0
        assert anomaly["trailing_mean"] == pytest.approx(1.0)
        assert anomaly["ratio"] == pytest.approx(10.0)

    def test_too_few_priors_never_flag(self):
        # Two noisy early runs cannot flag each other.
        assert history_anomalies(self._history([1.0, 10.0, 100.0])) == []

    def test_anomalous_entry_still_joins_the_trailing_mean(self):
        # After the spike, the mean includes it, so a return to normal
        # is not flagged as an anomaly in the other direction.
        anomalies = history_anomalies(
            self._history([1.0, 1.0, 1.0, 10.0, 1.0]), factor=5.0
        )
        assert [a["entry"] for a in anomalies] == [3]

    def test_factor_must_exceed_one(self):
        with pytest.raises(ConfigurationError, match="factor"):
            history_anomalies(self._history([1.0]), factor=1.0)

    def test_malformed_entries_are_skipped(self):
        history = {
            "entries": [
                {"experiments": "not-a-dict"},
                {"experiments": {"fig13": "not-a-number"}},
                {"no_experiments": True},
            ]
        }
        assert history_anomalies(history) == []
