"""Failure injection: extreme and hostile configurations.

The library must either handle or loudly reject degenerate hardware and
workload configurations — no silent nonsense. These tests push the
models outside the paper's envelope.
"""

import dataclasses

import numpy as np
import pytest

from repro.data.generator import generate_workload
from repro.data.relation import Relation
from repro.errors import CapacityError, ConfigurationError, PlanError
from repro.hw.specs import ac922
from repro.join import (
    DegradationLadder,
    NoPartitioningJoin,
    TritonJoin,
    reference_join,
)
from repro.join.caching import PIPELINE_RESERVED_BYTES, plan_cache
from repro.partition.planner import plan_radix_join
from repro.units import GIB, MIB, gib

from tests.conftest import gpu_with_memory


class TestTinyGpu:
    """A GPU with almost no memory: everything must spill."""

    @pytest.fixture(scope="class")
    def tiny_system(self):
        return gpu_with_memory(2 * GIB)

    def test_cache_plan_degrades_to_spill(self, tiny_system):
        plan = plan_cache(gib(61), tiny_system.gpu_memory_capacity)
        assert plan.gpu_fraction < 0.02

    def test_triton_still_correct_and_finite(self, tiny_system):
        workload = generate_workload(512, 512, scale_divisor=65536)
        run = TritonJoin(tiny_system).run(workload)
        assert run.match == reference_join(workload.build, workload.probe)
        assert np.isfinite(run.seconds)

    def test_gpu_smaller_than_reservation(self):
        # Capacity below the pipeline reservation: cache goes to zero
        # rather than negative.
        plan = plan_cache(gib(10), PIPELINE_RESERVED_BYTES / 2)
        assert plan.cache_bytes == 0.0
        assert plan.gpu_fraction == 0.0


class TestSubReservationGpu:
    """A GPU below the pipeline reservation: the plain operator refuses,
    the degradation ladder spills and succeeds."""

    @pytest.fixture(scope="class")
    def sub_reservation_system(self):
        return gpu_with_memory(PIPELINE_RESERVED_BYTES // 2)

    def test_plain_operator_raises_capacity_error(
        self, sub_reservation_system, fault_workload
    ):
        with pytest.raises(CapacityError):
            TritonJoin(sub_reservation_system).run(fault_workload)

    def test_ladder_degrades_to_spill_and_succeeds(
        self, sub_reservation_system, fault_workload
    ):
        ladder = DegradationLadder(sub_reservation_system, use_advisor=False)
        run = ladder.run(fault_workload)
        note = run.notes["degradation"]
        assert note["rung"] == "triton-spill"
        assert "CapacityError" in note["failures"]["triton"]
        assert run.match == reference_join(
            fault_workload.build, fault_workload.probe
        )
        assert np.isfinite(run.seconds)


class TestOneSmGpu:
    def test_join_completes_compute_bound(self):
        base = ac922()
        system = base.with_gpu(base.gpu.with_sm_count(1))
        workload = generate_workload(128, 128, scale_divisor=65536)
        run = TritonJoin(system).run(workload)
        full = TritonJoin(base).run(workload)
        assert run.match == full.match
        assert run.seconds > 2 * full.seconds  # severely compute bound


class TestTinyScratchpad:
    def test_planner_rejects_impossible_configurations(self):
        base = ac922()
        # A 1 KiB scratchpad cannot hold partitions of a 2048M build
        # within the supported radix budget.
        crippled = base.with_gpu(
            dataclasses.replace(
                base.gpu,
                usable_scratchpad_bytes=64,
                scratchpad_bytes_per_sm=96 * 1024,
            )
        )
        with pytest.raises(PlanError):
            plan_radix_join(
                2_048_000_000, 2_048_000_000, 136, crippled
            )

    def test_partitioner_rejects_overflowing_fanout(self):
        from repro.hw.tlb import MemSpace
        from repro.partition import SharedPartitioner

        with pytest.raises(ConfigurationError):
            SharedPartitioner().gpu_work(
                1e6, 16, 2048, MemSpace.CPU, MemSpace.CPU, 1024
            )


class TestHostileWorkloads:
    def test_probe_keys_far_outside_build_range(self, system):
        build = Relation(
            np.arange(1, 1001, dtype=np.int64),
            {"attr0": np.arange(1000, dtype=np.int64)},
        )
        probe = Relation(
            np.array([-(2**62), 2**62, 0, 500], dtype=np.int64),
            {"attr0": np.zeros(4, dtype=np.int64)},
        )
        from repro.data.generator import Workload, WorkloadConfig

        workload = Workload(
            config=WorkloadConfig(1e-3, 4e-6), build=build, probe=probe
        )
        expected = reference_join(build, probe)
        assert expected.matches == 1
        assert TritonJoin(system).run(workload).match == expected
        assert NoPartitioningJoin(
            system, cache_bytes=0.0
        ).run(workload).match == expected

    def test_extreme_build_probe_asymmetry(self, system):
        workload = generate_workload(0.005, 5.0, scale_divisor=1, seed=44)
        run = TritonJoin(system).run(workload)
        assert run.match == reference_join(workload.build, workload.probe)

    def test_maximal_zipf_skew(self, system):
        workload = generate_workload(
            0.01, 0.1, zipf_theta=2.5, scale_divisor=1, seed=44
        )
        run = TritonJoin(system).run(workload)
        assert run.match == reference_join(workload.build, workload.probe)
        assert np.isfinite(run.seconds)


class TestHostileSpecs:
    def test_zero_capacity_memory_rejected(self):
        from repro.hw.specs import MemorySpec

        with pytest.raises(ConfigurationError):
            MemorySpec(
                capacity_bytes=0,
                bandwidth_bytes_per_s=1.0,
                electrical_bytes_per_s=1.0,
            )

    def test_interleaving_with_giant_pages(self):
        from repro.hw.memory import InterleavedMapping

        # Page larger than the mapping: one page, correctly placed.
        mapping = InterleavedMapping(
            total_bytes=MIB, gpu_bytes=MIB, page_bytes=1 * GIB
        )
        assert mapping.page_count == 1
        spaces = [space for _, space in mapping.iter_pages()]
        assert len(spaces) == 1
