"""The Volcano plan layer: validation, semantics, byte-identity.

The headline claim is the last class: executing ``analytics_spec()``
through the plan layer reproduces ``examples/analytics_query.py``'s
direct operator calls byte for byte — same match summary, same
aggregate, same simulated seconds.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import generate_workload, reference_join
from repro.aggregate import (
    AggregateFunction,
    TritonAggregation,
    reference_aggregate,
)
from repro.data.generator import generate_pk_fk
from repro.errors import PlanError
from repro.join.filters import BloomFilteredTritonJoin
from repro.join.triton import TritonJoin
from repro.service.plan import (
    analytics_spec,
    compile_plan,
    estimate_query_bytes,
    execute_plan,
    validate_spec,
)

SCALE = 65536


def spec(root, name="q", **workload):
    base = {
        "build_m_tuples": 64,
        "probe_m_tuples": 64,
        "scale_divisor": SCALE,
        "seed": 3,
    }
    base.update(workload)
    return {"name": name, "workload": base, "root": root}


def scan(relation, **extra):
    return {"op": "scan", "relation": relation, **extra}


def join(build=None, probe=None, **extra):
    return {
        "op": "join",
        "build": build or scan("build"),
        "probe": probe or scan("probe"),
        **extra,
    }


class TestValidation:
    def test_accepts_minimal_join(self):
        config = validate_spec(spec(join()))
        assert config.build_m_tuples == 64

    @pytest.mark.parametrize(
        "broken, fragment",
        [
            ("not a dict", "plan spec must be an object"),
            ({"workload": {}, "root": join(), "bogus": 1}, "bogus"),
            (
                {"workload": {"build_m_tuples": 1, "probe_m_tuples": 1}},
                "missing required field 'root'",
            ),
            (spec({"op": "mystery"}), "root: unknown op 'mystery'"),
            (spec({"op": "scan", "relation": "fact"}), "root.relation"),
            (spec(join(algorithm="hashzilla")), "root.algorithm"),
            (spec(join(extra_knob=1)), "unknown fields ['extra_knob']"),
            (
                spec({"op": "scan", "relation": "build"}),
                "must contain a join node",
            ),
            (
                spec({"op": "filter", "predicate": "semijoin"}),
                "requires an 'input' node",
            ),
        ],
    )
    def test_rejects_with_path_in_message(self, broken, fragment):
        with pytest.raises(PlanError, match="(?s)" + fragment.replace(
            "[", "\\["
        ).replace("]", "\\]").replace("'", ".")):
            validate_spec(broken)

    def test_workload_errors_name_the_field(self):
        with pytest.raises(PlanError, match="workload"):
            validate_spec(
                {"workload": {"no_such_field": 1}, "root": join()}
            )

    def test_bool_is_not_an_integer(self):
        bad = spec(
            {
                "op": "partition",
                "bits": True,
                "input": scan("probe"),
            }
        )
        bad["root"] = join(probe=bad["root"])
        with pytest.raises(PlanError, match="bits"):
            validate_spec(bad)

    def test_key_range_requires_ordered_bounds(self):
        bad = join(
            probe={
                "op": "filter",
                "predicate": "key_range",
                "lo": 10,
                "hi": 5,
                "input": scan("probe"),
            }
        )
        with pytest.raises(PlanError, match="lo < hi"):
            validate_spec(spec(bad))

    def test_aggregate_mode_needs_capable_algorithm(self):
        with pytest.raises(PlanError, match="aggregate"):
            validate_spec(spec(join(algorithm="cpu-radix", aggregate=True)))

    def test_cpu_fraction_only_for_coprocess(self):
        with pytest.raises(PlanError, match="cpu_fraction"):
            validate_spec(spec(join(algorithm="triton", cpu_fraction=0.5)))

    def test_describe_renders_the_tree(self):
        plan = compile_plan(spec(join(algorithm="bloom-triton")))
        text = plan.describe()
        assert "Join(bloom-triton)" in text
        assert "Scan(build)" in text
        assert "Scan(probe)" in text


class TestSemantics:
    def test_plain_join_matches_direct_operator(self, system):
        plan_spec = spec(join())
        result = execute_plan(plan_spec, system=system)
        workload = generate_workload(64, 64, scale_divisor=SCALE, seed=3)
        direct = TritonJoin(system).run(workload)
        assert result.match == direct.match
        assert result.seconds == pytest.approx(direct.seconds, rel=1e-12)
        assert result.match == reference_join(workload.build, workload.probe)

    def test_filter_predicates_match_numpy_reference(self, system):
        build, probe = generate_pk_fk(
            compile_plan(spec(join())).config
        )
        cases = {
            "modulo": (
                {"predicate": "modulo", "divisor": 4, "remainder": 1},
                probe.keys % 4 == 1,
            ),
            "key_range": (
                {"predicate": "key_range", "lo": 10, "hi": 5000},
                (probe.keys >= 10) & (probe.keys < 5000),
            ),
            "semijoin": (
                {"predicate": "semijoin"},
                np.isin(probe.keys, build.keys),
            ),
        }
        for name, (fields, mask) in cases.items():
            result = execute_plan(
                spec(
                    join(
                        probe={
                            "op": "filter",
                            "input": scan("probe"),
                            **fields,
                        }
                    )
                ),
                system=system,
            )
            expected = reference_join(
                build, probe.take(np.nonzero(mask)[0])
            )
            assert result.match == expected, name

    def test_filter_selectivity_scales_nominal_rows(self, system):
        result = execute_plan(
            spec(
                join(
                    probe={
                        "op": "filter",
                        "predicate": "semijoin",
                        "selectivity": 0.25,
                        "input": scan("probe"),
                    }
                )
            ),
            system=system,
        )
        # The join stage saw a probe input whose nominal cardinality was
        # scaled, which changes the simulated cost but not the result.
        unscaled = execute_plan(spec(join()), system=system)
        assert result.seconds < unscaled.seconds

    def test_partition_preserves_rows(self, system):
        partitioned = execute_plan(
            spec(
                join(
                    probe={
                        "op": "partition",
                        "bits": 4,
                        "input": scan("probe"),
                    }
                )
            ),
            system=system,
        )
        plain = execute_plan(spec(join()), system=system)
        # The partition permutes rows; the join result is unchanged.
        assert partitioned.match == plain.match
        assert any(
            stage["operator"] == "partition_relation"
            for stage in partitioned.stages
        )

    def test_multi_batch_scan_joins_identically(self, system):
        batched = execute_plan(
            spec(join(probe=scan("probe", batches=5))), system=system
        )
        plain = execute_plan(spec(join()), system=system)
        assert batched.match == plain.match
        # Nominal cardinality was distributed exactly across batches, so
        # the merged input costs the same as the unbatched scan.
        assert batched.seconds == pytest.approx(plain.seconds, rel=1e-9)

    def test_groupby_matches_direct_aggregation(self, system):
        plan_spec = spec(
            {"op": "groupby", "function": "sum", "input": join()},
            probe_m_tuples=128,
        )
        result = execute_plan(plan_spec, system=system)
        workload = generate_workload(64, 128, scale_divisor=SCALE, seed=3)
        surviving = workload.probe.take(
            np.nonzero(
                np.isin(workload.probe.keys, workload.build.keys)
            )[0]
        ).with_nominal_rows(
            int(
                workload.probe.nominal_rows
                * workload.config.probe_hit_rate
            )
        )
        direct = TritonAggregation(system, AggregateFunction.SUM).run(
            surviving, groups_nominal=workload.build.nominal_rows
        )
        assert result.aggregate == direct.result
        assert result.aggregate == reference_aggregate(surviving)

    def test_checkpoint_sees_every_stage(self, system):
        stages = []
        execute_plan(
            spec({"op": "groupby", "function": "count", "input": join()}),
            system=system,
            checkpoint=stages.append,
        )
        assert "Scan(build)" in stages
        assert "Scan(probe)" in stages
        assert "Join(triton)" in stages
        assert "GroupBy(count)" in stages

    def test_estimate_matches_materialized_bytes(self):
        plan_spec = spec(join(), payload_columns=2)
        config = validate_spec(plan_spec)
        build, probe = generate_pk_fk(config)
        assert estimate_query_bytes(plan_spec) == (
            build.materialized_bytes + probe.materialized_bytes
        )


class TestResultSurface:
    def test_checksum_is_stable_and_json_safe(self, system):
        first = execute_plan(spec(join()), system=system)
        second = execute_plan(spec(join()), system=system)
        assert first.checksum == second.checksum
        round_tripped = json.loads(json.dumps(first.to_dict()))
        assert round_tripped["checksum"] == first.checksum

    def test_spec_json_round_trip_executes_identically(self, system):
        original = spec(
            {"op": "groupby", "function": "sum", "input": join()},
        )
        round_tripped = json.loads(json.dumps(original))
        assert (
            execute_plan(original, system=system).checksum
            == execute_plan(round_tripped, system=system).checksum
        )

    def test_table_has_stage_columns(self, system):
        table = execute_plan(spec(join()), system=system).table()
        text = table.format()
        assert "Join(triton)" in text
        assert "total" in text


class TestAnalyticsByteIdentity:
    """The acceptance criterion: plan path == example's direct path."""

    def test_plan_reproduces_example_exactly(self, system):
        result = execute_plan(analytics_spec(), system=system)

        workload = generate_workload(
            256, 2048, probe_hit_rate=0.25, scale_divisor=16384, seed=71
        )
        join_op = BloomFilteredTritonJoin(system)
        join_op.inner.aggregate = True
        join_run = join_op.run(workload)
        surviving = workload.probe.take(
            np.nonzero(
                np.isin(workload.probe.keys, workload.build.keys)
            )[0]
        ).with_nominal_rows(int(workload.probe.nominal_rows * 0.25))
        agg_run = TritonAggregation(system, AggregateFunction.SUM).run(
            surviving, groups_nominal=workload.build.nominal_rows
        )

        assert result.match == join_run.match
        assert result.aggregate == agg_run.result
        assert result.seconds == pytest.approx(
            join_run.seconds + agg_run.seconds, rel=1e-12
        )
