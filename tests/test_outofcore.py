"""Out-of-core execution: morsels, spill, worker pool, operator wiring."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.exec import context as exec_context
from repro.exec.context import ExecutionConfig, should_go_out_of_core
from repro.exec.morsel import (
    CHECKSUM_MOD,
    ArraySource,
    merge_partials,
    partition_state,
    plan_morsels,
)
from repro.exec.outofcore import out_of_core_join
from repro.exec.pool import ShmBlock, get_pool, shutdown_pool
from repro.hashing.batch import DEFAULT_BUCKETS
from repro.join import run_cache
from repro.join.base import JoinMatch
from repro.join.batched import batched_radix_join
from repro.join.triton import TritonJoin

BITS1 = 6


@pytest.fixture(scope="module")
def reference(small_workload):
    """The in-memory join the out-of-core paths must reproduce."""
    return batched_radix_join(
        small_workload.build, small_workload.probe, BITS1, 4
    )


def summary(match):
    return (match.matches, match.key_checksum, match.payload_checksum)


def join_with_note(build, probe, config):
    """Run one out-of-core join and return (match, its summary note)."""
    exec_context.consume_notes()  # drain anything a prior call left
    match = out_of_core_join(build, probe, BITS1, config=config)
    notes = exec_context.consume_notes()
    assert len(notes) == 1
    return match, notes[0]


class TestExecutionConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(budget_bytes=0)
        with pytest.raises(ConfigurationError):
            ExecutionConfig(morsel_rows=16)
        with pytest.raises(ConfigurationError):
            ExecutionConfig(workers=-1)

    def test_ambient_activation_is_scoped(self):
        assert exec_context.active() is None
        outer = ExecutionConfig(budget_bytes=1024)
        inner = ExecutionConfig(budget_bytes=2048)
        with exec_context.configured(outer):
            assert exec_context.active() is outer
            with exec_context.configured(inner):
                assert exec_context.active() is inner
            assert exec_context.active() is outer
        assert exec_context.active() is None

    def test_should_go_out_of_core(self, small_workload):
        build, probe = small_workload.build, small_workload.probe
        state = build.materialized_bytes + probe.materialized_bytes
        assert not should_go_out_of_core(build, probe, None)
        assert should_go_out_of_core(
            build, probe, ExecutionConfig(force=True)
        )
        assert should_go_out_of_core(
            build, probe, ExecutionConfig(budget_bytes=state // 2)
        )
        assert not should_go_out_of_core(
            build, probe, ExecutionConfig(budget_bytes=state * 2)
        )

    def test_notes_mailbox_drains(self):
        exec_context.record_note({"mode": "memory"})
        exec_context.record_note({"mode": "spill"})
        notes = exec_context.consume_notes()
        assert [note["mode"] for note in notes] == ["memory", "spill"]
        assert exec_context.consume_notes() == []


class TestMorselPlanning:
    def test_morsels_cover_every_partition_once(self):
        build = np.array([100, 0, 50, 3000, 10, 0, 20, 40], dtype=np.int64)
        probe = build * 2
        morsels = plan_morsels(build, probe, morsel_rows=256)
        assert [m.index for m in morsels] == list(range(len(morsels)))
        covered = []
        for morsel in morsels:
            assert morsel.lo < morsel.hi
            covered.extend(range(morsel.lo, morsel.hi))
        assert covered == list(range(len(build)))
        total = int((build + probe).sum())
        assert sum(m.rows for m in morsels) == total

    def test_oversized_partition_closes_its_morsel(self):
        """Hash skew: a fat partition can't be split, so the greedy
        packer closes the morsel right after it instead of dragging
        later partitions into the same giant unit of work."""
        build = np.array([10, 5000, 10], dtype=np.int64)
        probe = np.zeros(3, dtype=np.int64)
        morsels = plan_morsels(build, probe, morsel_rows=100)
        fat = [m for m in morsels if m.lo <= 1 < m.hi]
        assert len(fat) == 1
        assert fat[0].hi == 2
        assert fat[0].rows >= 5000

    def test_merge_partials_is_exact(self):
        """Chunk-wise merged checksums equal the full-array result.

        ``JoinMatch.from_arrays`` reduces mod ``2**62``; numpy's int64
        sums wrap mod ``2**64 ≡ 0 (mod 2**62)``, so splitting the
        arrays anywhere and merging must be bit-exact, not approximate.
        """
        rng = np.random.default_rng(3)
        keys = rng.integers(1, 2**60, 10_000).astype(np.int64)
        payloads = rng.integers(1, 2**60, 10_000).astype(np.int64)
        whole = JoinMatch.from_arrays(keys, payloads)
        partials = []
        for lo in range(0, len(keys), 1337):
            chunk = JoinMatch.from_arrays(
                keys[lo:lo + 1337], payloads[lo:lo + 1337]
            )
            partials.append(
                (chunk.matches, chunk.key_checksum,
                 chunk.payload_checksum, 1337)
            )
        merged = merge_partials(partials)
        assert summary(merged) == summary(whole)
        assert merged.key_checksum < CHECKSUM_MOD


class TestOutOfCoreIdentity:
    def test_serial_in_memory(self, small_workload, reference):
        match, note = join_with_note(
            small_workload.build,
            small_workload.probe,
            ExecutionConfig(force=True, workers=0),
        )
        assert summary(match) == summary(reference)
        assert note["mode"] == "memory"
        assert note["morsels"] >= 1

    def test_spill_to_disk(self, small_workload, reference, tmp_path):
        build, probe = small_workload.build, small_workload.probe
        state = build.materialized_bytes + probe.materialized_bytes
        match, note = join_with_note(
            build,
            probe,
            ExecutionConfig(
                budget_bytes=state // 2,
                workers=0,
                morsel_rows=4096,
                spill_dir=str(tmp_path),
            ),
        )
        assert summary(match) == summary(reference)
        assert note["mode"] == "spill"
        assert note["spilled_bytes"] > 0
        assert note["shards"] >= 2
        # The spill manager cleaned up after itself.
        assert list(tmp_path.glob("repro-spill-*")) == []

    def test_morsel_pool(self, small_workload, reference):
        try:
            match, note = join_with_note(
                small_workload.build,
                small_workload.probe,
                ExecutionConfig(force=True, workers=2, morsel_rows=4096),
            )
            assert summary(match) == summary(reference)
            assert note["mode"] == "memory"
            assert note["workers"] == 2
            assert 0.0 <= note["occupancy"] <= 1.0
            assert note["worker_deaths"] == 0
        finally:
            shutdown_pool()

    def test_empty_probe(self, small_workload):
        empty = small_workload.probe.take(np.arange(0))
        match, note = join_with_note(
            small_workload.build, empty, ExecutionConfig(force=True)
        )
        assert summary(match) == (0, 0, 0)
        assert note["mode"] == "memory"


def shm_partition_state(build, probe):
    """Partition into shared-memory blocks, as ``_memory_join`` does."""
    blocks = []

    def allocate(name, rows, dtype):
        block = ShmBlock(rows, dtype)
        blocks.append((name, block))
        return block.array

    source = partition_state(build, probe, BITS1, allocate=allocate)
    return source, blocks


class TestCrashRecovery:
    def test_worker_death_recovers_exactly(self, small_workload, reference):
        """Kill worker 0 mid-morsel; the parent must re-execute it.

        The done-flag protocol marks a morsel complete only after its
        partial is computed, so a worker dying between claim and
        completion leaves a detectable hole the parent fills inline —
        and because partials merge order-independently, the recovered
        result is identical, not merely close.
        """
        from repro.exec.morsel import execute_morsel

        source, blocks = shm_partition_state(
            small_workload.build, small_workload.probe
        )
        morsels = plan_morsels(
            np.diff(source.build_offsets),
            np.diff(source.probe_offsets),
            4096,
        )
        assert len(morsels) > 1

        def job(die_on=None):
            return {
                "mode": "shm",
                "blocks": {
                    name: block.descriptor() for name, block in blocks
                },
                "build_offsets": source.build_offsets,
                "probe_offsets": source.probe_offsets,
                "buckets": DEFAULT_BUCKETS,
                "die_on": die_on,
            }

        def recover(morsel):
            return execute_morsel(source, morsel, DEFAULT_BUCKETS)

        try:
            pool = get_pool(2)
            result = pool.run(
                job(die_on={0: morsels[0].index}), morsels, recover
            )
            assert result.deaths == 1
            assert result.recovered >= 1
            assert summary(merge_partials(result.partials)) == summary(
                reference
            )

            # The pool respawned the dead worker: a second, clean job
            # on the same pool completes with no deaths.
            healed = pool.run(job(), morsels, recover)
            assert healed.deaths == 0
            assert healed.recovered == 0
            assert summary(merge_partials(healed.partials)) == summary(
                reference
            )
            assert 0.0 <= healed.occupancy <= 1.0
        finally:
            for _name, block in blocks:
                block.release()
            shutdown_pool()


class TestOperatorWiring:
    def test_triton_join_spills_transparently(self, system, small_workload):
        operator = TritonJoin(system)
        clean = operator.run(small_workload)
        assert "out_of_core" not in clean.notes

        state = (
            small_workload.build.materialized_bytes
            + small_workload.probe.materialized_bytes
        )
        config = ExecutionConfig(
            budget_bytes=state // 2, workers=0, morsel_rows=4096
        )
        with exec_context.configured(config):
            budgeted = operator.run(small_workload)
        note = budgeted.notes["out_of_core"]
        assert note["mode"] == "spill"
        assert note["budget_bytes"] == state // 2
        assert summary(budgeted.match) == summary(clean.match)

    def test_run_cache_key_separates_exec_configs(
        self, system, small_workload
    ):
        operator = TritonJoin(system)
        plain = run_cache.run_key(operator, small_workload)
        with exec_context.configured(ExecutionConfig(budget_bytes=1024)):
            budgeted = run_cache.run_key(operator, small_workload)
        with exec_context.configured(ExecutionConfig(budget_bytes=2048)):
            other = run_cache.run_key(operator, small_workload)
        assert plain != budgeted
        assert budgeted != other
