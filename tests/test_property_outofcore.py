"""Property tests: out-of-core joins are identical under any budget.

Hypothesis draws a workload, a radix window, a morsel size, and a
host-memory budget fraction; whatever combination of in-memory morsels
or disk spill that implies, the out-of-core executor's match summary
must equal :func:`repro.join.batched.batched_radix_join`'s bit for bit
— the headline invariant of the out-of-core path.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.exec import context as exec_context
from repro.exec.context import MIN_MORSEL_ROWS, ExecutionConfig
from repro.exec.outofcore import out_of_core_join
from repro.join.batched import batched_radix_join


@st.composite
def join_inputs(draw):
    """A (build, probe) pair with duplicates, misses, and skew."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    build_rows = draw(st.integers(min_value=1, max_value=1200))
    probe_rows = draw(st.integers(min_value=1, max_value=2400))
    key_space = draw(st.integers(min_value=1, max_value=2 * build_rows))
    rng = np.random.default_rng(seed)
    build_keys = rng.integers(1, key_space + 1, build_rows).astype(np.int64)
    probe_keys = rng.integers(
        1, 2 * key_space + 1, probe_rows
    ).astype(np.int64)
    build = Relation(
        build_keys,
        {"attr0": rng.integers(0, 2**40, build_rows).astype(np.int64)},
        name="R",
    )
    probe = Relation(
        probe_keys,
        {"attr0": rng.integers(0, 2**40, probe_rows).astype(np.int64)},
        name="S",
    )
    return build, probe


def summary(match):
    return (match.matches, match.key_checksum, match.payload_checksum)


@given(
    join_inputs(),
    st.integers(min_value=1, max_value=6),
    st.sampled_from([MIN_MORSEL_ROWS, 1024, 65536]),
    st.floats(min_value=0.05, max_value=1.5),
)
@settings(max_examples=25, deadline=None)
def test_out_of_core_matches_batched(
    tmp_path_factory, inputs, bits1, morsel_rows, budget_fraction
):
    build, probe = inputs
    reference = batched_radix_join(build, probe, bits1, 2)
    state = build.materialized_bytes + probe.materialized_bytes
    budget = max(1, int(state * budget_fraction))
    config = ExecutionConfig(
        budget_bytes=budget,
        workers=0,
        morsel_rows=morsel_rows,
        spill_dir=str(tmp_path_factory.mktemp("oc")),
        force=True,
    )
    match = out_of_core_join(build, probe, bits1, config=config)
    notes = exec_context.consume_notes()
    assert summary(match) == summary(reference)
    # The budget decided the mode; either way the result was identical.
    expected_mode = "spill" if state > budget else "memory"
    assert notes[-1]["mode"] == expected_mode


@given(join_inputs(), st.integers(min_value=1, max_value=5))
@settings(max_examples=15, deadline=None)
def test_forced_memory_morsels_match_batched(inputs, bits1):
    """The pure in-memory morsel path (no budget at all) is identical."""
    build, probe = inputs
    reference = batched_radix_join(build, probe, bits1, 3)
    match = out_of_core_join(
        build,
        probe,
        bits1,
        config=ExecutionConfig(force=True, workers=0, morsel_rows=512),
    )
    exec_context.consume_notes()
    assert summary(match) == summary(reference)
