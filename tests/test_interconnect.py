"""Unit tests for the NVLink 2.0 packet model (repro.hw.interconnect)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.interconnect import (
    AccessPattern,
    InterconnectModel,
    Op,
    WireCost,
)
from repro.hw.specs import nvlink2
from repro.units import GIB


@pytest.fixture(scope="module")
def model():
    return InterconnectModel(nvlink2())


class TestWireCost:
    def test_full_line_read(self, model):
        cost = model.wire_cost(128, Op.READ)
        # request header out + response header + payload in
        assert cost.to_cpu_bytes == 16
        assert cost.to_gpu_bytes == 16 + 128
        assert cost.transactions == 1

    def test_small_read_padded_to_32(self, model):
        cost = model.wire_cost(4, Op.READ)
        assert cost.to_gpu_bytes == 16 + 32

    def test_full_line_write(self, model):
        cost = model.wire_cost(128, Op.WRITE)
        assert cost.to_cpu_bytes == 16 + 128
        assert cost.to_gpu_bytes == 16  # ack

    def test_small_write_has_byte_enable(self, model):
        cost = model.wire_cost(16, Op.WRITE)
        assert cost.to_cpu_bytes == 16 + 16 + 16

    def test_multi_packet_access(self, model):
        cost = model.wire_cost(512, Op.WRITE)
        assert cost.transactions == 4
        assert cost.to_cpu_bytes == 4 * (16 + 128)

    def test_misaligned_write_extra_overhead(self, model):
        aligned = model.wire_cost(512, Op.WRITE, aligned=True)
        misaligned = model.wire_cost(512, Op.WRITE, aligned=False)
        assert misaligned.to_cpu_bytes > aligned.to_cpu_bytes
        assert misaligned.transactions == aligned.transactions + 1

    def test_overhead_fraction(self, model):
        cost = model.wire_cost(128, Op.WRITE)
        assert cost.overhead_fraction == pytest.approx(
            (16 + 16) / 128
        )

    def test_wire_cost_addition(self):
        a = WireCost(10, 20, 30, 1)
        b = WireCost(1, 2, 3, 4)
        total = a + b
        assert total.payload_bytes == 11
        assert total.wire_bytes == 55
        assert total.transactions == 5

    def test_bulk_scales_linearly(self, model):
        single = model.wire_cost(128, Op.READ)
        bulk = model.wire_cost_bulk(128 * 1000, 128, Op.READ)
        assert bulk.to_gpu_bytes == 1000 * single.to_gpu_bytes
        assert bulk.transactions == 1000

    def test_rejects_nonpositive_access(self, model):
        with pytest.raises(ConfigurationError):
            model.wire_cost(0, Op.READ)


class TestBandwidthCurve:
    """The Fig. 6(a) calibration targets, within 10%."""

    PAPER = {
        (4, Op.READ): 2.6, (4, Op.WRITE): 1.8,
        (16, Op.READ): 10.4, (16, Op.WRITE): 5.9,
        (64, Op.READ): 44.1, (64, Op.WRITE): 25.3,
        (128, Op.READ): 63.8, (128, Op.WRITE): 63.6,
        (512, Op.READ): 63.8, (512, Op.WRITE): 63.6,
    }

    @pytest.mark.parametrize("granularity,op", list(PAPER))
    def test_matches_paper_within_15_percent(self, model, granularity, op):
        measured = model.effective_bandwidth(granularity, op) / GIB
        paper = self.PAPER[(granularity, op)]
        assert measured == pytest.approx(paper, rel=0.15)

    def test_linear_growth_below_transaction_size(self, model):
        bw_16 = model.effective_bandwidth(16, Op.READ)
        bw_32 = model.effective_bandwidth(32, Op.READ)
        assert bw_32 == pytest.approx(2 * bw_16)

    def test_saturation_at_128_bytes(self, model):
        bw_128 = model.effective_bandwidth(128, Op.READ)
        bw_512 = model.effective_bandwidth(512, Op.READ)
        assert bw_512 == pytest.approx(bw_128)

    def test_reads_beat_writes_sub_line(self, model):
        # Paper: small reads are 44-74% faster than small writes.
        for g in (4, 8, 16, 32, 64):
            ratio = model.effective_bandwidth(g, Op.READ) / \
                model.effective_bandwidth(g, Op.WRITE)
            assert 1.3 < ratio < 1.9

    def test_sequential_ignores_granularity(self, model):
        for g in (4, 64, 512):
            bw = model.effective_bandwidth(g, Op.READ, AccessPattern.SEQUENTIAL)
            assert bw == model.spec.effective_bytes_per_s

    def test_duplex_cap(self, model):
        duplex = model.effective_bandwidth(128, Op.WRITE, duplex=True)
        assert duplex == pytest.approx(model.spec.duplex_bytes_per_s)
        assert duplex < model.effective_bandwidth(128, Op.WRITE)


class TestAlignmentPenalties:
    """The Fig. 6(b) calibration targets."""

    def test_misaligned_read_loses_about_20_percent(self, model):
        aligned = model.effective_bandwidth(512, Op.READ)
        misaligned = model.effective_bandwidth(512, Op.READ, aligned=False)
        assert misaligned / aligned == pytest.approx(0.8, abs=0.03)

    def test_misaligned_write_loses_about_56_percent(self, model):
        aligned = model.effective_bandwidth(512, Op.WRITE)
        misaligned = model.effective_bandwidth(512, Op.WRITE, aligned=False)
        assert misaligned / aligned == pytest.approx(0.44, abs=0.05)

    def test_misalignment_penalty_shrinks_with_size(self, model):
        # Boundary effects amortize over large accesses.
        small = model.effective_bandwidth(256, Op.WRITE, aligned=False)
        large = model.effective_bandwidth(16384, Op.WRITE, aligned=False)
        peak = model.effective_bandwidth(16384, Op.WRITE, aligned=True)
        assert large > small
        assert large / peak > 0.9

    def test_transfer_time(self, model):
        seconds = model.transfer_time(
            model.spec.effective_bytes_per_s, 128, Op.READ
        )
        assert seconds == pytest.approx(1.0)

    def test_transfer_time_zero_bytes(self, model):
        assert model.transfer_time(0, 128, Op.READ) == 0.0
