"""Tests for the radix sort substrate and table serialization."""

import json

import numpy as np
import pytest

from repro.bench.harness import ExperimentTable
from repro.data.relation import Relation
from repro.errors import ConfigurationError
from repro.sort import GpuRadixSort


def make_relation(rows=50_000, seed=3, nominal=None):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**62, size=rows).astype(np.int64)
    return Relation(keys, {"attr0": keys * 3}, nominal_rows=nominal)


class TestFunctionalSort:
    def test_produces_sorted_output(self, system):
        run = GpuRadixSort(system).run(make_relation())
        assert run.is_sorted

    def test_sort_is_a_permutation(self, system):
        relation = make_relation(rows=5000, seed=9)
        sorter = GpuRadixSort(system)
        result = sorter._functional_sort(relation)
        assert np.array_equal(np.sort(relation.keys), result.keys)

    def test_payloads_travel_with_keys(self, system):
        relation = make_relation(rows=5000, seed=9)
        result = GpuRadixSort(system)._functional_sort(relation)
        assert np.array_equal(result.payloads["attr0"], result.keys * 3)

    def test_duplicates_survive(self, system):
        keys = np.array([5, 1, 5, 3, 1], dtype=np.int64)
        relation = Relation(keys, {"attr0": keys})
        result = GpuRadixSort(system)._functional_sort(relation)
        assert list(result.keys) == [1, 1, 3, 5, 5]

    def test_already_sorted_input(self, system):
        relation = Relation(np.arange(1000, dtype=np.int64))
        run = GpuRadixSort(system).run(relation)
        assert run.is_sorted


class TestSortCost:
    def test_throughput_in_plausible_band(self, system):
        # 61 GiB sort: the paper's sorting-related work reaches a few
        # G tuples/s on similar hardware; ours must be link-bound.
        relation = make_relation(nominal=4_096_000_000)
        run = GpuRadixSort(system).run(relation)
        assert 0.3 < run.throughput_g_tuples_per_s < 3.0

    def test_out_of_core_scales_gracefully(self, system):
        sorter = GpuRadixSort(system)
        small = sorter.run(make_relation(nominal=512_000_000))
        large = sorter.run(make_relation(nominal=4_096_000_000))
        ratio = (
            large.seconds / small.seconds
        ) / (4_096_000_000 / 512_000_000)
        assert 0.7 < ratio < 1.3  # near-linear in input size

    def test_pass_count(self, system):
        run = GpuRadixSort(system, first_pass_bits=8).run(make_relation())
        # 8 MSD bits + ceil(55 / 8) refinement digit passes.
        assert run.passes == 1 + 7

    def test_rejects_bad_bits(self, system):
        with pytest.raises(ConfigurationError):
            GpuRadixSort(system, first_pass_bits=0)


class TestTableSerialization:
    @pytest.fixture
    def table(self):
        t = ExperimentTable("demo", "Demo", ["a", "b"], unit="GiB/s")
        t.add_row("x", {"a": 1.5, "b": 2.0})
        t.add_row("partial", {"a": 3.0})
        t.add_note("note one")
        return t

    def test_csv_round_numbers(self, table):
        csv = table.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "series,a,b"
        assert lines[1] == "x,1.5,2.0"
        assert lines[2] == "partial,3.0,"

    def test_csv_escaping(self):
        t = ExperimentTable("e", "T", ["a"])
        t.add_row('needs,"quotes"', {"a": 1.0})
        assert '"needs,""quotes"""' in t.to_csv()

    def test_dict_round_trip(self, table):
        restored = ExperimentTable.from_dict(table.to_dict())
        assert restored.experiment == table.experiment
        assert restored.columns == table.columns
        assert restored.row("x").get("b") == 2.0
        assert restored.notes == table.notes

    def test_json_serializable(self, table):
        payload = json.dumps(table.to_dict())
        restored = ExperimentTable.from_dict(json.loads(payload))
        assert restored.row("partial").get("a") == 3.0
