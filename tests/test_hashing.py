"""Unit tests for hash functions and tables (repro.hashing)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing import (
    BucketChainingTable,
    HashScheme,
    LinearProbingTable,
    PerfectTable,
    fibonacci_hash,
    multiply_shift,
    murmur_mix,
)
from repro.hashing.functions import radix_bits_of
from repro.hashing.hash_table import (
    bucket_chaining_profile,
    linear_probing_profile,
    perfect_profile,
    profile_for,
)


KEYS = np.arange(1, 10_001, dtype=np.int64)
VALUES = KEYS * 3


class TestHashFunctions:
    @pytest.mark.parametrize("fn", [multiply_shift, fibonacci_hash, murmur_mix])
    def test_deterministic(self, fn):
        assert np.array_equal(fn(KEYS), fn(KEYS))

    @pytest.mark.parametrize("fn", [multiply_shift, fibonacci_hash, murmur_mix])
    def test_nonnegative(self, fn):
        assert (fn(KEYS) >= 0).all()

    @pytest.mark.parametrize("fn", [multiply_shift, fibonacci_hash, murmur_mix])
    def test_bits_bound_range(self, fn):
        hashed = fn(KEYS, bits=8)
        assert hashed.min() >= 0
        assert hashed.max() < 256

    def test_multiply_shift_balances_buckets(self):
        hashed = multiply_shift(KEYS, bits=6)
        counts = np.bincount(hashed, minlength=64)
        assert counts.min() > 0.4 * counts.mean()
        assert counts.max() < 2.0 * counts.mean()

    def test_bits_out_of_range(self):
        with pytest.raises(ConfigurationError):
            multiply_shift(KEYS, bits=0)
        with pytest.raises(ConfigurationError):
            multiply_shift(KEYS, bits=64)

    def test_radix_window_offset(self):
        low = radix_bits_of(KEYS, 4, offset=0)
        high = radix_bits_of(KEYS, 4, offset=4)
        assert not np.array_equal(low, high)
        assert high.max() < 16

    def test_radix_window_bounds(self):
        with pytest.raises(ConfigurationError):
            radix_bits_of(KEYS, 32, offset=40)


class TestLinearProbing:
    def test_finds_all_keys(self):
        table = LinearProbingTable(KEYS, VALUES)
        idx, values = table.probe(KEYS)
        assert len(idx) == len(KEYS)
        assert np.array_equal(np.sort(values), np.sort(VALUES))

    def test_misses_return_nothing(self):
        table = LinearProbingTable(KEYS, VALUES)
        idx, _ = table.probe(np.array([100_000, 200_000], dtype=np.int64))
        assert len(idx) == 0

    def test_mixed_hits_and_misses(self):
        table = LinearProbingTable(KEYS, VALUES)
        probes = np.array([1, 999_999, 2], dtype=np.int64)
        idx, values = table.probe(probes)
        assert sorted(idx.tolist()) == [0, 2]
        assert sorted(values.tolist()) == [3, 6]

    def test_table_is_power_of_two_at_50_percent_load(self):
        table = LinearProbingTable(KEYS, VALUES, load_factor=0.5)
        assert table.slot_count == 32768
        assert table.table_bytes == 32768 * 16

    def test_rejects_empty_build(self):
        with pytest.raises(ConfigurationError):
            LinearProbingTable(np.array([], dtype=np.int64), np.array([]))

    def test_rejects_bad_load_factor(self):
        with pytest.raises(ConfigurationError):
            LinearProbingTable(KEYS, VALUES, load_factor=1.0)


class TestBucketChaining:
    def test_finds_all_keys(self):
        table = BucketChainingTable(KEYS, VALUES)
        idx, values = table.probe(KEYS)
        assert len(idx) == len(KEYS)
        assert np.array_equal(np.sort(values), np.sort(VALUES))

    def test_handles_duplicate_build_keys(self):
        keys = np.array([7, 7, 8], dtype=np.int64)
        values = np.array([70, 71, 80], dtype=np.int64)
        table = BucketChainingTable(keys, values)
        idx, matched = table.probe(np.array([7], dtype=np.int64))
        assert sorted(matched.tolist()) == [70, 71]
        assert list(idx) == [0, 0]

    def test_default_bucket_count_is_the_papers(self):
        table = BucketChainingTable(KEYS, VALUES)
        assert table.bucket_count == 2048

    def test_chain_lengths_sum_to_rows(self):
        table = BucketChainingTable(KEYS, VALUES)
        assert table.chain_lengths().sum() == len(KEYS)

    def test_rejects_non_power_of_two_buckets(self):
        with pytest.raises(ConfigurationError):
            BucketChainingTable(KEYS, VALUES, buckets=1000)

    def test_empty_probe(self):
        table = BucketChainingTable(KEYS, VALUES)
        idx, values = table.probe(np.array([], dtype=np.int64))
        assert len(idx) == 0 and len(values) == 0


class TestPerfect:
    def test_finds_all_keys(self):
        table = PerfectTable(KEYS, VALUES)
        idx, values = table.probe(KEYS)
        assert np.array_equal(values, VALUES)

    def test_out_of_range_probes_miss(self):
        table = PerfectTable(KEYS, VALUES)
        idx, _ = table.probe(np.array([0, -5, 99_999], dtype=np.int64))
        assert len(idx) == 0

    def test_table_bytes_is_range_times_entry(self):
        table = PerfectTable(KEYS, VALUES)
        assert table.table_bytes == len(KEYS) * 16

    def test_rejects_sparse_keys(self):
        with pytest.raises(ConfigurationError):
            PerfectTable(np.array([1, 5], dtype=np.int64),
                         np.array([1, 2], dtype=np.int64), key_range=3)

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            PerfectTable(np.array([1, 1], dtype=np.int64),
                         np.array([1, 2], dtype=np.int64))


class TestProfiles:
    def test_linear_probing_table_size(self):
        # Paper: 2048M tuples -> 64 GiB table at 50% load (vs 30.5 GiB
        # for perfect hashing).
        profile = linear_probing_profile(2_048_000_000)
        assert profile.table_bytes == (1 << 32) * 16  # 64 GiB

    def test_perfect_table_size(self):
        profile = perfect_profile(2_048_000_000)
        assert profile.table_bytes == 2_048_000_000 * 16  # 30.5 GiB

    def test_linear_probing_costs_exceed_perfect(self):
        lp = linear_probing_profile(1_000_000)
        pf = perfect_profile(1_000_000)
        assert lp.build_accesses_per_tuple > pf.build_accesses_per_tuple
        assert lp.probe_accesses_per_tuple > pf.probe_accesses_per_tuple

    def test_bucket_chain_probe_grows_with_rows(self):
        small = bucket_chaining_profile(2048)
        large = bucket_chaining_profile(1 << 20)
        assert large.probe_accesses_per_tuple > small.probe_accesses_per_tuple

    def test_profile_dispatch(self):
        for scheme in HashScheme:
            profile = profile_for(scheme, 100_000)
            assert profile.table_bytes > 0


class TestSchemeEquivalence:
    """All schemes must produce identical join results."""

    def test_same_matches_on_random_probes(self):
        rng = np.random.default_rng(0)
        probes = rng.integers(-100, 20_000, size=5000).astype(np.int64)
        results = []
        for cls in (LinearProbingTable, BucketChainingTable, PerfectTable):
            table = cls(KEYS, VALUES)
            idx, values = table.probe(probes)
            results.append(sorted(zip(idx.tolist(), values.tolist())))
        assert results[0] == results[1] == results[2]
