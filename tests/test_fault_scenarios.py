"""Golden fault-scenario corpus: regression replay.

Each JSON under ``tests/data/fault_plans/`` is a checked-in
:class:`repro.faults.FaultPlan` plus an ``expected`` block (ignored by
the plan parser) pinning the outcome: which ladder rung completes the
join, which rungs fail or are skipped, which fault-event kinds appear,
and a minimum slowdown over the fault-free run. Replaying them catches
regressions in the deterministic fault draws, the retry machinery, and
the ladder's fallback order — the same plans feed the bench CLI's
``--faults`` flag and the CI chaos leg.
"""

import json
from pathlib import Path

import pytest

from repro import faults
from repro.errors import DegradationError, ReproError
from repro.faults import FaultPlan
from repro.join import DegradationLadder, reference_join

PLAN_DIR = Path(__file__).parent / "data" / "fault_plans"
PLAN_PATHS = sorted(PLAN_DIR.glob("*.json"))


def expected_block(path):
    return json.loads(path.read_text())["expected"]


@pytest.fixture(scope="module")
def clean_run(system, fault_workload):
    return DegradationLadder(system, use_advisor=False).run(fault_workload)


def test_corpus_exists_and_is_substantial():
    assert len(PLAN_PATHS) >= 6


@pytest.mark.parametrize(
    "path", PLAN_PATHS, ids=[p.stem for p in PLAN_PATHS]
)
def test_plan_round_trips(path):
    plan = FaultPlan.load(path)
    assert FaultPlan.from_json(plan.to_json()) == plan
    assert plan.description  # every golden scenario says what it is


@pytest.mark.parametrize(
    "path", PLAN_PATHS, ids=[p.stem for p in PLAN_PATHS]
)
def test_replay_matches_expected_outcome(
    path, system, fault_workload, clean_run
):
    plan = FaultPlan.load(path)
    expected = expected_block(path)
    ladder = DegradationLadder(system, use_advisor=False)

    if "error" in expected:
        with pytest.raises(ReproError) as info:
            with faults.injected(plan):
                ladder.run(fault_workload)
        assert type(info.value).__name__ == expected["error"]
        return

    with faults.injected(plan):
        run = ladder.run(fault_workload)

    # Functional result is byte-identical to the fault-free run.
    assert run.match == clean_run.match
    assert run.match == reference_join(
        fault_workload.build, fault_workload.probe
    )

    note = run.notes.get("degradation")
    if expected["degraded"]:
        assert note is not None
        assert note["rung"] == expected["rung"]
        for rung in expected.get("failed_rungs", ()):
            assert rung in note["failures"]
            assert not note["failures"][rung].startswith("skipped")
        for rung in expected.get("skipped_rungs", ()):
            assert note["failures"][rung].startswith("skipped")
    else:
        assert note is None

    if expected.get("fault_kinds") is not None and run.sim is not None:
        kinds = {e.kind for e in run.sim.fault_events}
        assert kinds == set(expected["fault_kinds"])

    if expected.get("exact_clean_makespan"):
        assert run.seconds == clean_run.seconds
    if "min_slowdown" in expected:
        assert run.seconds > expected["min_slowdown"] * clean_run.seconds
