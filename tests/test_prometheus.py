"""Prometheus exposition: naming, histogram triplets, one-shot HTTP."""

import threading
import urllib.request

import pytest

from repro.telemetry import metrics as metrics_mod
from repro.telemetry.prometheus import (
    CONTENT_TYPE,
    metric_name,
    parse_prometheus,
    prometheus_document,
    serve_once,
    validate_prometheus,
    write_prometheus,
)
from repro.telemetry.prometheus import main as prom_main


@pytest.fixture
def registry():
    return metrics_mod.MetricsRegistry()


class TestNaming:
    def test_dots_flatten_under_prefix(self):
        assert metric_name("run_cache.hits") == "repro_run_cache_hits"
        assert (
            metric_name("exec.pool.jobs", "_total")
            == "repro_exec_pool_jobs_total"
        )

    def test_invalid_chars_become_underscores(self):
        assert metric_name("a-b c.d") == "repro_a_b_c_d"


class TestDocument:
    def test_counters_get_total_suffix(self, registry):
        registry.count("run_cache.hits", 3)
        samples = parse_prometheus(prometheus_document(registry))
        assert samples["repro_run_cache_hits_total"] == 3.0

    def test_gauges_keep_bare_name(self, registry):
        registry.gauge("exec.pool.occupancy", 0.75)
        samples = parse_prometheus(prometheus_document(registry))
        assert samples["repro_exec_pool_occupancy"] == 0.75

    def test_timing_renders_cumulative_histogram_triplet(self, registry):
        for seconds in (0.001, 0.01, 0.01, 5.0):
            registry.observe("bench.experiment_seconds", seconds)
        document = prometheus_document(registry)
        assert validate_prometheus(document) == []
        samples = parse_prometheus(document)
        base = "repro_bench_experiment_seconds"
        assert samples[f"{base}_count"] == 4.0
        assert samples[f"{base}_sum"] == pytest.approx(5.021)
        assert samples[f'{base}_bucket{{le="+Inf"}}'] == 4.0
        buckets = sorted(
            (
                float("inf") if "+Inf" in key else float(key.split('"')[1]),
                value,
            )
            for key, value in samples.items()
            if key.startswith(f"{base}_bucket")
        )
        values = [value for _, value in buckets]
        assert values == sorted(values)  # cumulative

    def test_empty_registry_renders_empty_document(self, registry):
        assert prometheus_document(registry) == ""

    def test_validate_catches_non_cumulative_buckets(self):
        bad = (
            'repro_x_bucket{le="0.1"} 5\n'
            'repro_x_bucket{le="1"} 3\n'
            'repro_x_bucket{le="+Inf"} 5\n'
            "repro_x_sum 1\n"
            "repro_x_count 5\n"
        )
        problems = validate_prometheus(bad)
        assert any("not cumulative" in p for p in problems)

    def test_validate_catches_missing_inf_bucket(self):
        bad = (
            'repro_x_bucket{le="1"} 3\n'
            "repro_x_sum 1\nrepro_x_count 3\n"
        )
        assert any(
            "+Inf" in p for p in validate_prometheus(bad)
        )

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a sample"):
            parse_prometheus("this is { not } prometheus at all }{")


class TestFileAndCli:
    def test_write_then_cli_validate(self, registry, tmp_path, capsys):
        registry.count("exec.pool.jobs", 2)
        registry.observe("join.run_seconds", 0.2)
        path = tmp_path / "out.prom"
        write_prometheus(path, registry)
        assert prom_main([str(path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_cli_flags_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bad.prom"
        path.write_text('repro_x_bucket{le="1"} 3\n')
        assert prom_main([str(path)]) == 1
        assert "problem" in capsys.readouterr().out


class TestServeOnce:
    def test_one_shot_scrape_over_http(self, registry):
        registry.count("run_cache.hits", 7)
        registry.observe("bench.experiment_seconds", 0.5)
        server = serve_once(registry)
        try:
            port = server.server_address[1]
            thread = threading.Thread(target=server.handle_request)
            thread.start()
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5
            ) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            server.server_close()
        assert validate_prometheus(body) == []
        samples = parse_prometheus(body)
        assert samples["repro_run_cache_hits_total"] == 7.0
        assert samples["repro_bench_experiment_seconds_count"] == 1.0
