"""Prometheus exposition: naming, histogram triplets, one-shot HTTP."""

import threading
import urllib.request

import pytest

from repro.telemetry import metrics as metrics_mod
from repro.telemetry.prometheus import (
    CONTENT_TYPE,
    metric_name,
    parse_prometheus,
    parse_sample_key,
    prometheus_document,
    render_labels,
    serve_once,
    split_labels,
    validate_prometheus,
    write_prometheus,
)
from repro.telemetry.prometheus import main as prom_main


@pytest.fixture
def registry():
    return metrics_mod.MetricsRegistry()


class TestNaming:
    def test_dots_flatten_under_prefix(self):
        assert metric_name("run_cache.hits") == "repro_run_cache_hits"
        assert (
            metric_name("exec.pool.jobs", "_total")
            == "repro_exec_pool_jobs_total"
        )

    def test_invalid_chars_become_underscores(self):
        assert metric_name("a-b c.d") == "repro_a_b_c_d"


class TestDocument:
    def test_counters_get_total_suffix(self, registry):
        registry.count("run_cache.hits", 3)
        samples = parse_prometheus(prometheus_document(registry))
        assert samples["repro_run_cache_hits_total"] == 3.0

    def test_gauges_keep_bare_name(self, registry):
        registry.gauge("exec.pool.occupancy", 0.75)
        samples = parse_prometheus(prometheus_document(registry))
        assert samples["repro_exec_pool_occupancy"] == 0.75

    def test_timing_renders_cumulative_histogram_triplet(self, registry):
        for seconds in (0.001, 0.01, 0.01, 5.0):
            registry.observe("bench.experiment_seconds", seconds)
        document = prometheus_document(registry)
        assert validate_prometheus(document) == []
        samples = parse_prometheus(document)
        base = "repro_bench_experiment_seconds"
        assert samples[f"{base}_count"] == 4.0
        assert samples[f"{base}_sum"] == pytest.approx(5.021)
        assert samples[f'{base}_bucket{{le="+Inf"}}'] == 4.0
        buckets = sorted(
            (
                float("inf") if "+Inf" in key else float(key.split('"')[1]),
                value,
            )
            for key, value in samples.items()
            if key.startswith(f"{base}_bucket")
        )
        values = [value for _, value in buckets]
        assert values == sorted(values)  # cumulative

    def test_empty_registry_renders_empty_document(self, registry):
        assert prometheus_document(registry) == ""

    def test_validate_catches_non_cumulative_buckets(self):
        bad = (
            'repro_x_bucket{le="0.1"} 5\n'
            'repro_x_bucket{le="1"} 3\n'
            'repro_x_bucket{le="+Inf"} 5\n'
            "repro_x_sum 1\n"
            "repro_x_count 5\n"
        )
        problems = validate_prometheus(bad)
        assert any("not cumulative" in p for p in problems)

    def test_validate_catches_missing_inf_bucket(self):
        bad = (
            'repro_x_bucket{le="1"} 3\n'
            "repro_x_sum 1\nrepro_x_count 3\n"
        )
        assert any(
            "+Inf" in p for p in validate_prometheus(bad)
        )

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a sample"):
            parse_prometheus("this is { not } prometheus at all }{")


class TestLabels:
    """Label support: registry keys ``base{k=v,...}`` render, parse, and
    validate as labelled series."""

    def test_split_labels_round_trip(self):
        base, labels = split_labels(
            "service.slo.burn_rate{objective=availability}"
        )
        assert base == "service.slo.burn_rate"
        assert labels == {"objective": "availability"}

    def test_split_labels_passes_plain_names_through(self):
        assert split_labels("run_cache.hits") == ("run_cache.hits", {})
        assert split_labels("weird{unclosed") == ("weird{unclosed", {})

    def test_labeled_gauge_renders_and_parses(self, registry):
        registry.gauge(
            "service.slo.burn_rate{objective=availability}", 1.25
        )
        registry.gauge(
            "service.slo.burn_rate{objective=query-latency}", 0.5
        )
        document = prometheus_document(registry)
        assert validate_prometheus(document) == []
        samples = parse_prometheus(document)
        base = "repro_service_slo_burn_rate"
        assert samples[f'{base}{{objective="availability"}}'] == 1.25
        assert samples[f'{base}{{objective="query-latency"}}'] == 0.5
        # One HELP/TYPE head per base metric, not per labelled series.
        assert document.count(f"# TYPE {base} ") == 1

    def test_labeled_counter_keeps_total_suffix(self, registry):
        registry.count("queries{template=big-state}", 3)
        samples = parse_prometheus(prometheus_document(registry))
        assert (
            samples['repro_queries_total{template="big-state"}'] == 3.0
        )

    def test_labeled_timing_merges_le_into_label_set(self, registry):
        registry.observe("wait{queue=high}", 0.01)
        registry.observe("wait{queue=high}", 0.5)
        document = prometheus_document(registry)
        assert validate_prometheus(document) == []
        samples = parse_prometheus(document)
        assert samples['repro_wait_count{queue="high"}'] == 2.0
        inf_buckets = [
            key
            for key in samples
            if key.startswith("repro_wait_bucket") and "+Inf" in key
        ]
        assert len(inf_buckets) == 1
        name, labels = parse_sample_key(inf_buckets[0])
        assert name == "repro_wait_bucket"
        assert labels == {"queue": "high", "le": "+Inf"}

    def test_label_values_escape_and_unescape(self):
        rendered = render_labels({"path": 'a"b\\c'})
        assert rendered == '{path="a\\"b\\\\c"}'
        _, labels = parse_sample_key(f"metric{rendered}")
        assert labels == {"path": 'a"b\\c'}

    def test_validator_distinguishes_label_sets(self):
        # Two label sets of the same histogram validate independently:
        # a count mismatch in one is attributed to that series.
        document = (
            'repro_w_bucket{queue="a",le="+Inf"} 2\n'
            'repro_w_sum{queue="a"} 1\n'
            'repro_w_count{queue="a"} 2\n'
            'repro_w_bucket{queue="b",le="+Inf"} 4\n'
            'repro_w_sum{queue="b"} 1\n'
            'repro_w_count{queue="b"} 3\n'
        )
        problems = validate_prometheus(document)
        assert any('queue="b"' in p or "queue=b" in p for p in problems)
        assert not any('queue="a"' in p and "count" in p for p in problems)


class TestFileAndCli:
    def test_write_then_cli_validate(self, registry, tmp_path, capsys):
        registry.count("exec.pool.jobs", 2)
        registry.observe("join.run_seconds", 0.2)
        path = tmp_path / "out.prom"
        write_prometheus(path, registry)
        assert prom_main([str(path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_cli_flags_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bad.prom"
        path.write_text('repro_x_bucket{le="1"} 3\n')
        assert prom_main([str(path)]) == 1
        assert "problem" in capsys.readouterr().out


class TestServeOnce:
    def test_one_shot_scrape_over_http(self, registry):
        registry.count("run_cache.hits", 7)
        registry.observe("bench.experiment_seconds", 0.5)
        server = serve_once(registry)
        try:
            port = server.server_address[1]
            thread = threading.Thread(target=server.handle_request)
            thread.start()
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5
            ) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            server.server_close()
        assert validate_prometheus(body) == []
        samples = parse_prometheus(body)
        assert samples["repro_run_cache_hits_total"] == 7.0
        assert samples["repro_bench_experiment_seconds_count"] == 1.0
