"""Unit tests for the four join operators: correctness + cost structure."""

import pytest

from repro.data.generator import generate_workload
from repro.hashing import HashScheme
from repro.join import (
    CachePolicy,
    CpuPartitionedJoin,
    CpuRadixJoin,
    NoPartitioningJoin,
    TritonJoin,
    reference_join,
)
from repro.join.cpu_radix import radix_bits_for
from repro.partition.prefix_sum import PrefixSumLocation
from repro.units import M_TUPLES


@pytest.fixture(scope="module")
def workload():
    return generate_workload(0.1, 0.2, scale_divisor=1, seed=3)


@pytest.fixture(scope="module")
def reference(workload):
    return reference_join(workload.build, workload.probe)


class TestCorrectness:
    """Every operator must reproduce the reference join exactly."""

    def test_no_partitioning_all_schemes(self, system, workload, reference):
        for scheme in HashScheme:
            run = NoPartitioningJoin(system, scheme).run(workload)
            assert run.match == reference, scheme

    def test_cpu_radix(self, system, xeon, workload, reference):
        assert CpuRadixJoin(system).run(workload).match == reference
        assert CpuRadixJoin(xeon).run(workload).match == reference

    def test_cpu_partitioned(self, system, workload, reference):
        assert CpuPartitionedJoin(system).run(workload).match == reference

    def test_triton_default(self, system, workload, reference):
        assert TritonJoin(system).run(workload).match == reference

    def test_triton_variants(self, system, workload, reference):
        variants = [
            TritonJoin(system, cache_policy=CachePolicy.NONE),
            TritonJoin(system, overlap=False),
            TritonJoin(system, prefix_sum=PrefixSumLocation.GPU),
            TritonJoin(system, scheme=HashScheme.PERFECT),
            TritonJoin(system, pipeline_chunks=2),
        ]
        for op in variants:
            assert op.run(workload).match == reference

    def test_skewed_workload(self, system):
        skewed = generate_workload(0.05, 0.2, zipf_theta=0.9, seed=5)
        reference = reference_join(skewed.build, skewed.probe)
        assert TritonJoin(system).run(skewed).match == reference
        assert NoPartitioningJoin(system).run(skewed).match == reference


class TestRunMetadata:
    def test_throughput_positive(self, system, workload):
        run = TritonJoin(system).run(workload)
        assert run.throughput_g_tuples_per_s > 0
        assert run.seconds > 0

    def test_triton_notes(self, system, workload):
        run = TritonJoin(system).run(workload)
        assert "plan_bits" in run.notes
        assert 0 <= run.notes["gpu_fraction"] <= 1.0

    def test_np_notes(self, system, workload):
        run = NoPartitioningJoin(system).run(workload)
        assert run.notes["table_bytes"] > 0
        assert run.notes["gpu_fraction"] == 1.0  # small table fits

    def test_cpu_radix_uses_no_gpu(self, system, workload):
        run = CpuRadixJoin(system).run(workload)
        assert not run.uses_gpu
        assert run.counters.nvlink_wire_bytes == 0

    def test_counters_flow_through(self, system, workload):
        run = TritonJoin(system).run(workload)
        assert run.counters.cpu_mem_read_bytes > 0
        assert run.counters.tuples_processed > 0


class TestCostStructure:
    def test_np_cliff_emerges(self, system):
        small = generate_workload(512, 512, scale_divisor=8192)
        large = generate_workload(2048, 2048, scale_divisor=8192)
        op = NoPartitioningJoin(system, HashScheme.PERFECT)
        in_core = op.run(small).throughput_g_tuples_per_s
        out_core = op.run(large).throughput_g_tuples_per_s
        assert in_core / out_core > 3

    def test_triton_degrades_gracefully(self, system):
        op = TritonJoin(system)
        small = op.run(generate_workload(512, 512, scale_divisor=8192))
        large = op.run(generate_workload(2048, 2048, scale_divisor=8192))
        ratio = (
            large.throughput_g_tuples_per_s / small.throughput_g_tuples_per_s
        )
        assert ratio > 0.7  # paper: 74% of peak retained

    def test_overlap_beats_serial(self, system):
        workload = generate_workload(2048, 2048, scale_divisor=16384)
        overlapped = TritonJoin(system, overlap=True).run(workload)
        serial = TritonJoin(system, overlap=False).run(workload)
        assert overlapped.seconds < serial.seconds

    def test_caching_helps_out_of_core(self, system):
        workload = generate_workload(2048, 2048, scale_divisor=16384)
        cached = TritonJoin(system).run(workload)
        uncached = TritonJoin(system, cache_policy=CachePolicy.NONE).run(workload)
        assert cached.seconds < uncached.seconds

    def test_aggregate_cheaper_than_materialize(self, system):
        workload = generate_workload(512, 512, scale_divisor=16384)
        materialized = TritonJoin(system).run(workload)
        aggregated = TritonJoin(system, aggregate=True).run(workload)
        assert aggregated.seconds < materialized.seconds

    def test_phase_breakdown_covers_pipeline(self, system):
        workload = generate_workload(512, 512, scale_divisor=16384)
        run = TritonJoin(system).run(workload)
        phases = run.sim.phase_breakdown().seconds_by_phase
        for phase in ("PS 1", "Part 1", "Part 2", "Join"):
            assert phase in phases

    def test_xeon_slower_than_power9_at_scale(self, system, xeon):
        workload = generate_workload(2048, 2048, scale_divisor=16384)
        p9 = CpuRadixJoin(system).run(workload)
        xe = CpuRadixJoin(xeon).run(workload)
        assert xe.seconds > p9.seconds
        assert xe.notes["passes"] == 2
        assert p9.notes["passes"] == 1


class TestRadixBitsFor:
    def test_clamped_window(self):
        assert radix_bits_for(int(128 * M_TUPLES)) == 12
        assert radix_bits_for(int(2048 * M_TUPLES)) == 14

    def test_threshold_matches_paper(self):
        # The Xeon switches to two passes above 1408 M tuples because
        # that workload needs 14 bits.
        assert radix_bits_for(int(1408 * M_TUPLES)) == 14
        assert radix_bits_for(int(1024 * M_TUPLES)) == 13
