"""Degradation-ladder matrix: every rung x every fault class.

The ladder's contract: for any injectable fault class the join either
completes on the highest rung that tolerates it — with a functional
result byte-identical to the fault-free run — or raises a typed
:class:`DegradationError` after exhausting every rung. ``use_advisor=
False`` keeps the fallback order deterministic so each scenario pins
*which* rung handles it; the advisor-ranked path is tested separately.
"""

import pytest

from repro import faults, telemetry
from repro.errors import DegradationError, ReproError
from repro.faults import BandwidthFault, FaultPlan, RetryPolicy, TaskFault
from repro.join import DegradationLadder, Rung, TritonJoin, default_rungs
from repro.join import reference_join


@pytest.fixture(scope="module")
def expected(fault_workload):
    return reference_join(fault_workload.build, fault_workload.probe)


@pytest.fixture(scope="module")
def clean_run(system, fault_workload):
    return DegradationLadder(system, use_advisor=False).run(fault_workload)


def ladder_run(system, workload, plan, use_advisor=False):
    with faults.injected(plan):
        return DegradationLadder(system, use_advisor=use_advisor).run(workload)


#: fault class -> (plan, rung expected to complete, rungs that fail).
SCENARIOS = {
    "capacity_shrink": (
        FaultPlan(gpu_memory_factor=0.05, description="tenant pressure"),
        "triton-spill",
        ["triton"],
    ),
    "permanent_gpu_kernel": (
        FaultPlan(
            tasks=(TaskFault("join[*]", transient=False),),
            description="GPU join kernels die",
        ),
        "cpu-radix",  # GPU marked unhealthy: cpu-partitioned is skipped
        ["triton"],
    ),
    "retry_exhaustion": (
        FaultPlan(
            tasks=(TaskFault("join[*]", transient=True),),  # always fires
            retry=RetryPolicy(max_attempts=2, backoff_s=1e-4),
            description="join kernels never succeed",
        ),
        "cpu-radix",
        ["triton"],
    ),
    "bandwidth_collapse": (
        FaultPlan(
            bandwidth=(BandwidthFault("nvlink_*", 0.05),),
            description="interconnect brownout",
        ),
        "triton",  # slow, but no rung fails: graceful, not a cliff
        [],
    ),
    "transient_recoverable": (
        FaultPlan(
            tasks=(TaskFault("join[*]", max_failures=1),),
            retry=RetryPolicy(max_attempts=4, backoff_s=1e-4),
            description="one transient failure per join kernel",
        ),
        "triton",  # retries absorb it on the top rung
        [],
    ),
}


class TestMatrix:
    @pytest.mark.parametrize("fault_class", sorted(SCENARIOS))
    def test_rung_assignment(
        self, fault_class, system, fault_workload, expected, clean_run
    ):
        plan, completes_on, failing = SCENARIOS[fault_class]
        run = ladder_run(system, fault_workload, plan)
        note = run.notes.get("degradation")
        if failing:
            assert note is not None
            assert note["rung"] == completes_on
            for rung in failing:
                assert rung in note["failures"]
        else:
            # Top rung handled it: no degradation happened.
            assert note is None
        # Functional soundness: byte-identical to the fault-free run.
        assert run.match == expected
        assert run.match == clean_run.match

    @pytest.mark.parametrize("fault_class", sorted(SCENARIOS))
    def test_rung_counters(self, fault_class, system, fault_workload):
        plan, completes_on, failing = SCENARIOS[fault_class]
        before = telemetry.registry.snapshot()
        ladder_run(system, fault_workload, plan)
        delta = telemetry.registry.delta_since(before)["counters"]
        assert delta[f"faults.ladder.completed.{completes_on}"] == 1
        assert delta.get("faults.ladder.fallbacks", 0) >= len(failing)


class TestGpuHealth:
    def test_gpu_failure_skips_gpu_rungs(self, system, fault_workload):
        plan = SCENARIOS["permanent_gpu_kernel"][0]
        run = ladder_run(system, fault_workload, plan)
        note = run.notes["degradation"]
        assert note["gpu_healthy"] is False
        # Both remaining GPU rungs were skipped, not attempted.
        assert note["failures"]["triton-spill"].startswith("skipped")
        assert note["failures"]["cpu-partitioned"].startswith("skipped")
        assert note["attempted"] == ["triton", "cpu-radix"]
        before = telemetry.registry.snapshot()
        ladder_run(system, fault_workload, plan)
        delta = telemetry.registry.delta_since(before)["counters"]
        assert delta["faults.ladder.gpu_marked_unhealthy"] == 1

    def test_cpu_failure_keeps_gpu_rungs(self, system, fault_workload):
        # Kill only the CPU-radix rung's partition task: the top rung
        # has no such task, so the ladder never needs to fall at all.
        plan = FaultPlan(tasks=(TaskFault("partition", transient=False),))
        run = ladder_run(system, fault_workload, plan)
        assert run.notes.get("degradation") is None
        assert run.name == "GPU Triton Join"


class TestExhaustion:
    def test_all_rungs_fail_raises_degradation_error(
        self, system, fault_workload
    ):
        # Every simulated task everywhere dies permanently.
        plan = FaultPlan(tasks=(TaskFault("*", transient=False),))
        with pytest.raises(DegradationError) as info:
            ladder_run(system, fault_workload, plan)
        failures = info.value.failures
        assert "triton" in failures
        assert "cpu-radix" in failures
        assert set(failures) <= {
            "triton", "triton-spill", "cpu-partitioned", "cpu-radix"
        }
        assert isinstance(info.value, ReproError)

    def test_custom_rung_sequence(self, system, fault_workload, expected):
        # A one-rung ladder degrades nowhere: the failure is terminal.
        rungs = (Rung("triton", lambda s: TritonJoin(s)),)
        plan = FaultPlan(tasks=(TaskFault("join[*]", transient=False),))
        with pytest.raises(DegradationError):
            with faults.injected(plan):
                DegradationLadder(
                    system, rungs=rungs, use_advisor=False
                ).run(fault_workload)
        # And clean it just runs the one rung.
        run = DegradationLadder(
            system, rungs=rungs, use_advisor=False
        ).run(fault_workload)
        assert run.match == expected


class TestAdvisorRanking:
    def test_advisor_picks_a_working_rung_under_shrink(
        self, system, fault_workload, expected
    ):
        # With ranking on, the fallback choice is the advisor's cheapest
        # feasible rung — either spilling Triton or the CPU-partitioned
        # pipeline depending on size; both must be functionally exact.
        plan = FaultPlan(gpu_memory_factor=0.05)
        run = ladder_run(system, fault_workload, plan, use_advisor=True)
        note = run.notes["degradation"]
        assert note["rung"] in ("triton-spill", "cpu-partitioned")
        assert "triton" in note["failures"]
        assert run.match == expected

    def test_default_rungs_shape(self):
        rungs = default_rungs()
        assert [r.name for r in rungs] == [
            "triton", "triton-spill", "cpu-partitioned", "cpu-radix"
        ]
        assert [r.needs_gpu for r in rungs] == [True, True, True, False]
