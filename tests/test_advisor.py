"""Unit tests for the cost-based join advisor (repro.advisor)."""

import pytest

from repro.advisor import JoinAdvisor
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def advisor(system):
    return JoinAdvisor(system)


class TestEstimates:
    def test_all_candidates_costed(self, advisor):
        estimates = advisor.estimate(128, 128)
        assert {e.operator for e in estimates} == {
            "triton",
            "no_partitioning",
            "cpu_radix",
        }

    def test_sorted_fastest_first(self, advisor):
        estimates = advisor.estimate(512, 512)
        seconds = [e.seconds for e in estimates]
        assert seconds == sorted(seconds)

    def test_estimates_have_throughput(self, advisor):
        for estimate in advisor.estimate(128, 128):
            assert estimate.throughput_g_tuples_per_s > 0


class TestRecommendations:
    def test_np_join_for_small_state(self, advisor):
        # Comfortably in-core: the no-partitioning join wins (Fig. 13).
        assert advisor.recommend(128).operator == "no_partitioning"

    def test_triton_for_large_state(self, advisor):
        assert advisor.recommend(2048).operator == "triton"

    def test_hedging_prefers_triton_near_the_cliff(self, advisor):
        # At 640M the NP join still wins on the point estimate, but a 2x
        # cardinality error would push it off the GPU-memory cliff; the
        # robust choice is the Triton join.
        point = advisor.recommend(640)
        hedged = advisor.recommend(640, cardinality_error=2.0)
        assert point.operator == "no_partitioning"
        assert hedged.operator == "triton"
        assert hedged.hedged and not point.hedged

    def test_hedging_is_noop_when_already_robust(self, advisor):
        assert advisor.recommend(2048, cardinality_error=1.5).operator == (
            "triton"
        )

    def test_probe_defaults_to_build(self, advisor):
        rec = advisor.recommend(128)
        assert rec.best.operator == rec.operator

    def test_rejects_bad_inputs(self, advisor):
        with pytest.raises(ConfigurationError):
            advisor.recommend(0)
        with pytest.raises(ConfigurationError):
            advisor.recommend(128, cardinality_error=0.5)

    def test_custom_candidates(self, system):
        from repro.join import TritonJoin

        advisor = JoinAdvisor(
            system, candidates={"only": lambda: TritonJoin(system)}
        )
        assert advisor.recommend(128).operator == "only"

    def test_empty_candidates_rejected(self, system):
        with pytest.raises(ConfigurationError):
            JoinAdvisor(system, candidates={})
