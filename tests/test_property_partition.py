"""Property-based tests: radix partitioning invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.hashing.functions import radix_bits_of
from repro.hw.tlb import MemSpace
from repro.partition import (
    HierarchicalPartitioner,
    LinearPartitioner,
    SharedPartitioner,
    StandardPartitioner,
    count_flushes,
    partition_relation,
    radix_histogram,
)
from repro.hw.interconnect import Op

keys_arrays = st.lists(
    st.integers(min_value=-(2**62), max_value=2**62), min_size=1, max_size=500
).map(lambda xs: np.array(xs, dtype=np.int64))

bits_strategy = st.integers(min_value=1, max_value=8)


@given(keys_arrays, bits_strategy)
@settings(max_examples=60, deadline=None)
def test_partitioning_is_a_permutation(keys, bits):
    parts = partition_relation(Relation(keys), bits)
    assert np.array_equal(np.sort(parts.relation.keys), np.sort(keys))
    assert parts.offsets[-1] == len(keys)
    assert (np.diff(parts.offsets) >= 0).all()


@given(keys_arrays, bits_strategy)
@settings(max_examples=60, deadline=None)
def test_partitions_contain_only_their_selector(keys, bits):
    parts = partition_relation(Relation(keys), bits)
    selector = radix_bits_of(parts.relation.keys, bits)
    for index in range(parts.fanout):
        rows = parts.partition_rows(index)
        assert (selector[rows] == index).all()


@given(keys_arrays, bits_strategy)
@settings(max_examples=60, deadline=None)
def test_histogram_matches_partition_sizes(keys, bits):
    counts = radix_histogram(keys, bits)
    parts = partition_relation(Relation(keys), bits)
    assert np.array_equal(counts, parts.sizes())


@given(keys_arrays, bits_strategy, bits_strategy)
@settings(max_examples=40, deadline=None)
def test_two_pass_refinement_is_consistent(keys, bits1, bits2):
    """Pass-2 partitions nest exactly inside pass-1 partitions."""
    first = partition_relation(Relation(keys), bits1)
    for index in range(first.fanout):
        part = first.partition(index)
        if len(part) == 0:
            continue
        second = partition_relation(part, bits2, offset=bits1)
        assert (radix_bits_of(second.relation.keys, bits1) == index).all()
        assert np.array_equal(
            np.sort(second.relation.keys), np.sort(part.keys)
        )


@given(
    st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=64),
    st.integers(min_value=1, max_value=512),
)
def test_flush_count_bounds(counts, buffer_tuples):
    counts = np.array(counts)
    flushes = count_flushes(counts, buffer_tuples)
    nonempty = int((counts > 0).sum())
    assert flushes >= nonempty if counts.sum() else flushes == 0
    assert flushes <= counts.sum() // buffer_tuples + nonempty


@given(st.sampled_from([1, 2, 4, 6, 8, 10, 11]))
@settings(max_examples=20, deadline=None)
def test_work_profiles_conserve_volume(fanout_bits):
    """Every algorithm reads and writes exactly the input volume
    (plus auxiliary traffic, never less)."""
    fanout = 1 << fanout_bits
    tuples = 1e6
    for algorithm in (
        StandardPartitioner(),
        LinearPartitioner(),
        SharedPartitioner(),
        HierarchicalPartitioner(),
    ):
        if fanout > algorithm.max_fanout(16, 65536):
            continue
        work = algorithm.gpu_work(
            tuples, 16, fanout, MemSpace.CPU, MemSpace.CPU, 65536
        )
        reads = sum(
            r.total_bytes for r in work.requests if r.op is Op.READ
            and r.space is MemSpace.CPU
        )
        writes = sum(
            r.total_bytes for r in work.requests if r.op is Op.WRITE
            and r.space is MemSpace.CPU
        )
        assert reads >= tuples * 16
        assert writes == pytest.approx(tuples * 16)
        assert work.issue_slots > 0
