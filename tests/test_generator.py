"""Unit tests for the workload generator (repro.data.generator)."""

import numpy as np
import pytest

from repro.data.generator import (
    WorkloadConfig,
    generate_pk_fk,
    generate_workload,
)
from repro.errors import ConfigurationError


class TestPaperWorkload:
    """Section 6.1's workload properties."""

    def test_build_keys_are_a_dense_permutation(self):
        build, _ = generate_pk_fk(WorkloadConfig(0.1, 0.1))
        assert sorted(build.keys) == list(range(1, len(build) + 1))

    def test_build_keys_are_shuffled(self):
        build, _ = generate_pk_fk(WorkloadConfig(0.1, 0.1))
        assert list(build.keys) != sorted(build.keys)

    def test_probe_keys_reference_build(self):
        build, probe = generate_pk_fk(WorkloadConfig(0.05, 0.1))
        assert probe.keys.min() >= 1
        assert probe.keys.max() <= len(build)

    def test_probe_keys_roughly_uniform(self):
        build, probe = generate_pk_fk(WorkloadConfig(0.01, 0.5))
        counts = np.bincount(probe.keys, minlength=len(build) + 1)[1:]
        # Every build key should be referenced ~50 times on average.
        assert counts.mean() == pytest.approx(50.0, rel=0.05)
        assert counts.max() < 120

    def test_16_byte_tuples_by_default(self):
        build, probe = generate_pk_fk(WorkloadConfig(0.01, 0.01))
        assert build.tuple_bytes == 16
        assert probe.tuple_bytes == 16

    def test_deterministic_for_seed(self):
        a, _ = generate_pk_fk(WorkloadConfig(0.01, 0.01, seed=5))
        b, _ = generate_pk_fk(WorkloadConfig(0.01, 0.01, seed=5))
        assert np.array_equal(a.keys, b.keys)

    def test_different_seeds_differ(self):
        a, _ = generate_pk_fk(WorkloadConfig(0.01, 0.01, seed=1))
        b, _ = generate_pk_fk(WorkloadConfig(0.01, 0.01, seed=2))
        assert not np.array_equal(a.keys, b.keys)


class TestScaling:
    def test_nominal_vs_materialized(self):
        workload = generate_workload(128, 128, scale_divisor=1024)
        assert workload.build.nominal_rows == 128_000_000
        assert len(workload.build) == 125_000

    def test_divisor_one_is_full_scale(self):
        workload = generate_workload(0.05, 0.05, scale_divisor=1)
        assert len(workload.build) == workload.build.nominal_rows

    def test_materialized_floor(self):
        # Even extreme divisors keep enough rows to exercise partitioning.
        workload = generate_workload(128, 128, scale_divisor=1e9)
        assert len(workload.build) >= 4096

    def test_total_tuple_accounting(self):
        workload = generate_workload(128, 256, scale_divisor=1024)
        assert workload.total_nominal_tuples == 384_000_000
        assert workload.total_nominal_bytes == 384_000_000 * 16


class TestWideTuples:
    def test_payload_columns(self):
        workload = generate_workload(0.01, 0.01, payload_columns=4)
        assert workload.build.tuple_bytes == 8 + 4 * 8
        assert workload.build.payload_columns == 4

    def test_zero_payloads_join_index_mode(self):
        workload = generate_workload(0.01, 0.01, payload_columns=0)
        assert workload.build.tuple_bytes == 8


class TestZipf:
    def test_zipf_skews_references(self):
        uniform = generate_workload(0.01, 0.2, zipf_theta=0.0, seed=3)
        skewed = generate_workload(0.01, 0.2, zipf_theta=1.0, seed=3)
        u_max = np.bincount(uniform.probe.keys).max()
        s_max = np.bincount(skewed.probe.keys).max()
        assert s_max > 3 * u_max

    def test_zipf_keys_stay_in_range(self):
        workload = generate_workload(0.01, 0.05, zipf_theta=0.8)
        assert workload.probe.keys.min() >= 1
        assert workload.probe.keys.max() <= len(workload.build)


class TestValidation:
    def test_rejects_nonpositive_cardinality(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(0, 1)

    def test_rejects_divisor_below_one(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(1, 1, scale_divisor=0.5)

    def test_rejects_negative_payloads(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(1, 1, payload_columns=-1)

    def test_probe_defaults_to_build_size(self):
        workload = generate_workload(0.02)
        assert workload.probe.nominal_rows == workload.build.nominal_rows
