"""Tests for the error hierarchy and analytic-vs-functional cross-checks.

The cross-checks enforce DESIGN.md's "two-sided algorithms" contract:
the analytic work profiles the simulator consumes must agree with counts
observed in functional runs of the same code path.
"""

import numpy as np
import pytest

from repro.data.generator import generate_workload
from repro.data.relation import Relation
from repro.errors import (
    CapacityError,
    ConfigurationError,
    PlanError,
    ReproError,
    SimulationError,
)
from repro.hashing.functions import radix_bits_of
from repro.hw.interconnect import Op
from repro.hw.tlb import MemSpace
from repro.join import TritonJoin
from repro.partition import (
    SharedPartitioner,
    count_flushes,
    partition_relation,
    radix_histogram,
)
from repro.partition.base import buffer_tuples_per_partition


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigurationError, CapacityError, SimulationError, PlanError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)


class TestAnalyticVsFunctional:
    """Analytic estimates vs. counts from real runs of the same code."""

    @pytest.fixture(scope="class")
    def relation(self):
        rng = np.random.default_rng(23)
        keys = rng.integers(1, 2**40, size=100_000).astype(np.int64)
        return Relation(keys, {"attr0": keys})

    def test_analytic_flush_estimate_close_to_actual(self, relation):
        """bytes/flush_bytes approximates the real flush count."""
        shared = SharedPartitioner()
        bits = 6
        fanout = 1 << bits
        scratch = 64 * 1024
        buffer_tuples = buffer_tuples_per_partition(fanout, 16, scratch)
        counts = radix_histogram(relation.keys, bits)
        actual = count_flushes(counts, buffer_tuples)
        analytic = len(relation) / buffer_tuples
        # Partial flushes add at most one flush per partition.
        assert analytic <= actual <= analytic + fanout

    def test_partition_sizes_match_workload_distribution(self, relation):
        """The uniform-key assumption behind the cost model holds."""
        parts = partition_relation(relation, bits=6)
        sizes = parts.sizes()
        expected = len(relation) / 64
        assert sizes.max() < 1.5 * expected
        assert sizes.min() > 0.5 * expected

    def test_plan_fanout_matches_functional_partitioning(self, system):
        """The plan the cost model uses is the plan the functional
        layer executes."""
        workload = generate_workload(512, 512, scale_divisor=8192)
        op = TritonJoin(system)
        plan = op.plan(workload)
        parts = op.first_pass.partition(
            workload.build, min(plan.bits1, 10)
        )
        assert parts.fanout == 1 << min(plan.bits1, 10)
        # No data is lost through the two-sided split.
        assert parts.offsets[-1] == len(workload.build)

    def test_nominal_tuple_accounting_consistent(self, system):
        """Simulated tuple counters match the workload's nominal size."""
        workload = generate_workload(128, 128, scale_divisor=8192)
        run = TritonJoin(system).run(workload)
        nominal = workload.total_nominal_tuples
        # The pipeline touches each tuple in PS1, Part1, PS2, Part2, Join.
        assert run.counters.tuples_processed >= 3 * nominal
        assert run.counters.tuples_processed <= 8 * nominal

    def test_state_bytes_match_relation_bytes(self, system):
        workload = generate_workload(256, 256, scale_divisor=8192)
        run = TritonJoin(system).run(workload)
        assert run.notes["state_bytes"] == workload.total_nominal_bytes

    def test_radix_selector_is_what_the_planner_assumes(self, relation):
        """Pass-2 bits refine pass-1 bits without overlap."""
        low = radix_bits_of(relation.keys, 6, offset=0)
        high = radix_bits_of(relation.keys, 9, offset=6)
        combined = radix_bits_of(relation.keys, 15, offset=0)
        assert np.array_equal(combined, low + (high << 6))


class TestCapacityEnforcement:
    def test_memory_space_guards_the_papers_capacities(self, system):
        from repro.hw.memory import PageAllocator

        allocator = PageAllocator(
            system.gpu_memory_capacity, system.cpu_memory_capacity
        )
        # 61 GiB of partitioned state cannot live in GPU memory...
        with pytest.raises(CapacityError):
            allocator.alloc("state", 61 * 2**30, MemSpace.GPU)
        # ...but fits the CPU socket (the paper's point).
        allocator.alloc("state", 61 * 2**30, MemSpace.CPU)

    def test_request_validation_is_configuration_error(self, gpu_model):
        from repro.hw.gpu import MemoryRequest

        with pytest.raises(ConfigurationError):
            MemoryRequest(
                total_bytes=1.0, access_bytes=0, op=Op.READ, space=MemSpace.CPU
            )
