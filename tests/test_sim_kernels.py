"""Unit tests for the kernel/task builders (repro.sim.kernels)."""

import pytest

from repro.hw.cpu import CpuModel
from repro.hw.gpu import MemoryRequest
from repro.hw.interconnect import AccessPattern, Op
from repro.hw.tlb import MemSpace
from repro.sim import resources as res
from repro.sim.kernels import CpuTaskBuilder, GpuKernelBuilder
from repro.units import GIB, gib


@pytest.fixture
def builder(gpu_model):
    return GpuKernelBuilder(gpu_model)


@pytest.fixture
def cpu_builder(system):
    return CpuTaskBuilder(CpuModel(system.cpu))


def seq_read(nbytes, space=MemSpace.CPU):
    return MemoryRequest(
        total_bytes=nbytes,
        access_bytes=128,
        op=Op.READ,
        space=space,
        pattern=AccessPattern.SEQUENTIAL,
    )


class TestGpuKernelBuilder:
    def test_link_read_demand(self, builder):
        task = builder.build("k", [seq_read(gib(1))])
        assert task.demands[res.NVLINK_TO_GPU] == gib(1)
        assert task.demands[res.CPU_MEM_BW] == gib(1)

    def test_write_goes_to_cpu_direction(self, builder):
        task = builder.build(
            "k",
            [
                MemoryRequest(
                    total_bytes=gib(1),
                    access_bytes=128,
                    op=Op.WRITE,
                    space=MemSpace.CPU,
                    pattern=AccessPattern.SEQUENTIAL,
                )
            ],
        )
        assert res.NVLINK_TO_CPU in task.demands
        assert res.NVLINK_TO_GPU not in task.demands

    def test_gpu_space_uses_gpu_mem(self, builder):
        task = builder.build("k", [seq_read(gib(1), MemSpace.GPU)])
        assert task.demands == pytest.approx(
            {res.GPU_MEM_BW: gib(1)}
        ) or res.GPU_SM in task.demands

    def test_standalone_is_max_of_memory_and_compute(self, builder, gpu_model):
        link_seconds = gib(63.5) / gib(63.5)  # 1 second of link time
        heavy_compute = gpu_model.spec.total_ops_per_s * 2.0
        task = builder.build(
            "k", [seq_read(gib(63.5))], instructions=heavy_compute
        )
        assert task.standalone_seconds() == pytest.approx(2.0, rel=0.02)
        light = builder.build("k2", [seq_read(gib(63.5))], instructions=1e6)
        assert light.standalone_seconds() == pytest.approx(
            link_seconds, rel=0.02
        )

    def test_sm_fraction_halves_issue_rate(self, builder, gpu_model):
        instructions = gpu_model.spec.total_ops_per_s
        full = builder.build("f", [], instructions=instructions)
        half = builder.build(
            "h", [], instructions=instructions, sm_fraction=0.5
        )
        assert half.standalone_seconds() == pytest.approx(
            2 * full.standalone_seconds(), rel=0.01
        )

    def test_walks_create_iommu_demand(self, builder):
        task = builder.build(
            "k",
            [
                MemoryRequest(
                    total_bytes=gib(8),
                    access_bytes=16,
                    op=Op.READ,
                    space=MemSpace.CPU,
                    pattern=AccessPattern.RANDOM,
                    footprint_bytes=gib(64),
                )
            ],
        )
        assert task.demands[res.IOMMU_WALKS] > 0

    def test_counters_attached(self, builder):
        task = builder.build("k", [seq_read(gib(1))], tuples=1000.0)
        assert task.counters.cpu_mem_read_bytes == gib(1)
        assert task.counters.tuples_processed == 1000.0

    def test_meta_records_split(self, builder):
        task = builder.build("k", [seq_read(gib(1))], instructions=1e9)
        assert task.meta["memory_seconds"] > 0
        assert task.meta["compute_seconds"] > 0

    def test_empty_requests_skipped(self, builder):
        task = builder.build("k", [seq_read(0)], instructions=1.0)
        assert res.NVLINK_TO_GPU not in task.demands

    def test_launch_overhead_default(self, builder):
        task = builder.build("k", [])
        assert task.min_seconds > 0


class TestCpuTaskBuilder:
    def test_memory_demand(self, cpu_builder):
        task = cpu_builder.build("p", read_bytes=GIB, write_bytes=GIB)
        assert task.demands[res.CPU_MEM_BW] == 2 * GIB

    def test_compute_demand(self, cpu_builder, system):
        task = cpu_builder.build("p", operations=1e9)
        assert task.demands[res.CPU_CORES] == 1e9
        assert task.standalone_seconds() == pytest.approx(
            1e9 / system.cpu.total_ops_per_s
        )

    def test_random_writes_slower(self, cpu_builder):
        seq = cpu_builder.build("s", write_bytes=GIB)
        rand = cpu_builder.build("r", write_bytes=GIB, random_writes=True)
        assert rand.standalone_seconds() > seq.standalone_seconds()

    def test_counters(self, cpu_builder):
        task = cpu_builder.build(
            "p", read_bytes=GIB, operations=10.0, tuples=5.0
        )
        assert task.counters.cpu_mem_read_bytes == GIB
        assert task.counters.instructions == 10.0
        assert task.counters.tuples_processed == 5.0
