"""The consolidated paper-claims regression suite.

One test per quantitative claim in EXPERIMENTS.md, so a model change
that drifts a reproduced shape fails here (fast, reduced sweeps) even
before the full benchmarks run. Each test cites the claim it guards.
"""

import pytest

from repro.bench.experiments import (
    fig13_scaling,
    fig18_partition_profile,
    fig22_tuple_width,
)
from repro.bench.workloads import default_workload
from repro.hashing import HashScheme
from repro.hw.specs import ac922
from repro.join import CpuRadixJoin, NoPartitioningJoin, TritonJoin
from repro.units import GIB

DIVISOR = 65536


def tput(op, size):
    return op.run(
        default_workload(size, size, scale_divisor=DIVISOR)
    ).throughput_g_tuples_per_s


@pytest.fixture(scope="module")
def system():
    return ac922()


class TestAbstractClaims:
    def test_100x_over_no_partitioning(self, system):
        """Abstract: 'outperforms a no-partitioning hash join by more
        than 100x on the same GPU'."""
        triton = tput(TritonJoin(system), 2048)
        np_linear = tput(
            NoPartitioningJoin(system, HashScheme.LINEAR_PROBING), 2048
        )
        assert triton > 100 * np_linear

    def test_beats_cpu_radix(self, system):
        """Abstract: 'a radix-partitioned join on the CPU by up to 2.5x'
        (our model: >=1.4x at the largest size)."""
        assert tput(TritonJoin(system), 2048) > 1.4 * tput(
            CpuRadixJoin(system), 2048
        )


class TestFig13Claims:
    @pytest.fixture(scope="class")
    def table(self):
        return fig13_scaling.run(sizes=(128, 1024, 2048), scale_divisor=DIVISOR)

    def test_np_cliff_above_1024m(self, table):
        """§6.2.1: NP perfect degrades to ~0.5 G tuples/s above 1024M."""
        perfect = table.row("GPU NP Join (Perfect)")
        assert perfect.get("128M") > 2.0
        assert perfect.get("2048M") < 0.6

    def test_triton_retains_74_percent(self, table):
        """§6.2.1: Triton retains 74% of its peak at 2048M (ours >=70%)."""
        triton = table.row("GPU Triton Join (Bucket Chaining)")
        assert triton.get("2048M") / triton.get("128M") > 0.70

    def test_power9_band(self, table):
        """§6.2.1: POWER9 at 1.1 -> 0.9 G tuples/s (ours 1.37 -> 1.11)."""
        p9 = table.row("CPU Radix Join (POWER9)")
        assert 0.9 < p9.get("2048M") < 1.3
        assert 1.1 < p9.get("128M") < 1.6

    def test_xeon_two_pass_penalty(self, table):
        """§6.2.1: Xeon 1.0 -> 0.6 (two-pass switch above 1408M)."""
        xeon = table.row("CPU Radix Join (Xeon)")
        assert xeon.get("2048M") == pytest.approx(0.61, abs=0.1)

    def test_schemes_irrelevant_for_triton(self, table):
        """§6.2.1: bucket chaining within 0-2% of perfect hashing."""
        chain = table.row("GPU Triton Join (Bucket Chaining)")
        perfect = table.row("GPU Triton Join (Perfect)")
        for column in table.columns:
            assert chain.get(column) == pytest.approx(
                perfect.get(column), rel=0.05
            )


class TestFig18Claims:
    @pytest.fixture(scope="class")
    def profiles(self):
        return fig18_partition_profile.run(fanouts=(64, 128, 2048))

    def test_hierarchical_38_gib_at_2048(self, profiles):
        """§6.2.6: Hierarchical achieves 38.3 GiB/s at fanout 2048."""
        value = profiles.row("Hierarchical @ 2048").get("throughput GiB/s")
        assert value == pytest.approx(38.3, rel=0.1)

    def test_standard_ten_minutes(self, profiles):
        """§6.2.6: Standard's 60 GiB run takes ~10 minutes at high
        fanout."""
        rate = profiles.row("Standard @ 2048").get("throughput GiB/s")
        minutes = 60.0 / rate / 60.0
        assert 5 < minutes < 15

    def test_shared_tlb_jump_33x(self, profiles):
        """§6.2.6: Shared's miss rate jumps 33x between fanout 64 and
        128 — a miss on every second flush."""
        low = profiles.row("Shared @ 64").get("IOMMU req/tuple")
        high = profiles.row("Shared @ 128").get("IOMMU req/tuple")
        assert high / max(low, 1e-12) > 25

    def test_hierarchical_vs_shared_miss_ratio(self, profiles):
        """§6.2.6: at fanout 2048, Hierarchical's miss rate is 771x
        below Shared's (ours ~511x; must exceed 100x)."""
        shared = profiles.row("Shared @ 2048").get("IOMMU req/tuple")
        hier = profiles.row("Hierarchical @ 2048").get("IOMMU req/tuple")
        assert shared / hier > 100


class TestFig22Claim:
    def test_late_materialization_86_m_tuples(self):
        """§6.2.10: 86-88 M tuples/s at 16 late-materialized payloads."""
        table = fig22_tuple_width.run(
            payload_counts=(0, 16), sizes=(512,), scale_divisor=DIVISOR
        )
        value = table.row("512M").get("16 attrs")
        assert value == pytest.approx(0.087, abs=0.015)


class TestSection3Claims:
    def test_cpu_cannot_saturate_the_link(self, system):
        """§3.1/§3.2: even at alpha = 1 the CPU partitions well below
        the 63.5 GiB/s the link offers."""
        from repro.bench.experiments.fig04_partition_locations import (
            cpu_partition_throughput,
        )

        assert cpu_partition_throughput(system, 16.0, 512) < 45.0

    def test_interconnect_bound_conclusion(self, system):
        """§6.2.12: a faster GPU would not help; 2x SMs gains <5%."""
        workload = default_workload(2048, 2048, scale_divisor=DIVISOR)
        base = TritonJoin(system).run(workload).seconds
        doubled = TritonJoin(
            system.with_gpu(system.gpu.with_sm_count(160))
        ).run(workload).seconds
        assert base / doubled < 1.05

    def test_triton_handles_4x_gpu_memory(self, system):
        """§6.3: 61 GiB of state on a 16 GiB GPU at >1.5 G tuples/s."""
        workload = default_workload(2048, 2048, scale_divisor=DIVISOR)
        assert workload.total_nominal_bytes > 3.5 * system.gpu_memory_capacity
        run = TritonJoin(system).run(workload)
        assert run.throughput_g_tuples_per_s > 1.5
