"""White-box tests of the operators' cost structures."""

import pytest

from repro.data.generator import generate_workload
from repro.hashing import HashScheme
from repro.hw.tlb import MemSpace
from repro.join import (
    CachePolicy,
    CpuPartitionedJoin,
    MultiGpuTritonJoin,
    NoPartitioningJoin,
    TritonJoin,
)
from repro.sim import resources as res
from repro.units import GIB, gib


class TestNoPartitioningInternals:
    def test_all_or_nothing_placement(self, system):
        op = NoPartitioningJoin(system, HashScheme.PERFECT)
        small = generate_workload(512, 512, scale_divisor=65536)
        large = generate_workload(1024, 1024, scale_divisor=65536)
        assert op.run(small).notes["gpu_fraction"] == 1.0
        assert op.run(large).notes["gpu_fraction"] == 0.0

    def test_partial_caching_with_explicit_budget(self, system):
        op = NoPartitioningJoin(
            system, HashScheme.PERFECT, cache_bytes=gib(8)
        )
        workload = generate_workload(2048, 2048, scale_divisor=65536)
        run = op.run(workload)
        assert 0.2 < run.notes["gpu_fraction"] < 0.35  # 8 of 30.5 GiB

    def test_partial_cache_speeds_up_monotonically(self, system):
        workload = generate_workload(2048, 2048, scale_divisor=65536)
        times = []
        for cache_gib in (0.0, 7.0, 14.0):
            op = NoPartitioningJoin(
                system, HashScheme.PERFECT, cache_bytes=gib(cache_gib)
            )
            times.append(op.run(workload).seconds)
        assert times[0] > times[1] > times[2]

    def test_linear_probing_table_is_larger(self, system):
        workload = generate_workload(512, 512, scale_divisor=65536)
        perfect = NoPartitioningJoin(system, HashScheme.PERFECT).run(workload)
        linear = NoPartitioningJoin(
            system, HashScheme.LINEAR_PROBING
        ).run(workload)
        # ~2x: 1/load_factor, rounded up to a power of two (§6.2.2).
        ratio = linear.notes["table_bytes"] / perfect.notes["table_bytes"]
        assert 1.9 < ratio < 2.2

    def test_aggregate_mode_skips_result_writes(self, system):
        workload = generate_workload(512, 512, scale_divisor=65536)
        materialized = NoPartitioningJoin(system).run(workload)
        aggregated = NoPartitioningJoin(system, aggregate=True).run(workload)
        assert (
            aggregated.counters.cpu_mem_write_bytes
            < materialized.counters.cpu_mem_write_bytes
        )


class TestTritonInternals:
    def test_graph_has_expected_task_counts(self, system):
        op = TritonJoin(system, pipeline_chunks=4)
        workload = generate_workload(512, 512, scale_divisor=65536)
        graph = op.build_graph(workload)
        # ps1 + part1 + 4 x (ps2, part2, sched, join).
        assert len(graph.tasks) == 2 + 4 * 4
        graph.validate()

    def test_overlap_halves_sm_shares(self, system):
        workload = generate_workload(512, 512, scale_divisor=65536)
        graph = TritonJoin(system, overlap=True).build_graph(workload)
        join_tasks = [t for t in graph.tasks if t.phase == "Join"]
        full_rate = system.gpu.total_ops_per_s
        for task in join_tasks:
            assert task.rate_caps[res.GPU_SM] == pytest.approx(full_rate / 2)

    def test_serial_mode_uses_full_sms(self, system):
        workload = generate_workload(512, 512, scale_divisor=65536)
        graph = TritonJoin(system, overlap=False).build_graph(workload)
        join_tasks = [t for t in graph.tasks if t.phase == "Join"]
        full_rate = system.gpu.total_ops_per_s
        for task in join_tasks:
            assert task.rate_caps[res.GPU_SM] == pytest.approx(full_rate)

    def test_fully_cached_run_moves_no_spill_traffic(self, system):
        workload = generate_workload(128, 128, scale_divisor=65536)
        run = TritonJoin(system).run(workload)
        assert run.notes["gpu_fraction"] == 1.0
        # PS2 has no spill copy: only PS1/Part1 read CPU memory, and
        # results are the only CPU-memory writes.
        reads = run.counters.cpu_mem_read_bytes
        assert reads < 2.2 * workload.total_nominal_bytes

    def test_spill_traffic_scales_with_uncached_fraction(self, system):
        small = generate_workload(1024, 1024, scale_divisor=65536)
        large = generate_workload(2048, 2048, scale_divisor=65536)
        op = TritonJoin(system)
        small_reads = op.run(small).counters.cpu_mem_read_bytes
        large_reads = op.run(large).counters.cpu_mem_read_bytes
        # Doubling the data more than doubles the reads: the cached
        # fraction shrinks, so spill re-reads grow superlinearly.
        assert large_reads > 2.2 * small_reads

    def test_pipeline_chunks_bound_checked(self, system):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TritonJoin(system, pipeline_chunks=0)

    def test_cache_policy_none_forces_spill(self, system):
        workload = generate_workload(128, 128, scale_divisor=65536)
        run = TritonJoin(system, cache_policy=CachePolicy.NONE).run(workload)
        assert run.notes["gpu_fraction"] == 0.0


class TestCpuPartitionedInternals:
    def test_cpu_partition_tasks_feed_gpu_chunks(self, system):
        op = CpuPartitionedJoin(system, pipeline_chunks=3)
        workload = generate_workload(512, 512, scale_divisor=65536)
        run = op.run(workload)
        phases = {e.phase for e in run.sim.trace}
        assert phases == {"CPU Partition", "GPU Join"}
        cpu_tasks = [e for e in run.sim.trace if e.phase == "CPU Partition"]
        assert len(cpu_tasks) == 1 + 3  # R plus 3 S chunks

    def test_r_partitioning_precedes_every_gpu_chunk(self, system):
        op = CpuPartitionedJoin(system, pipeline_chunks=2)
        workload = generate_workload(512, 512, scale_divisor=65536)
        run = op.run(workload)
        r_end = next(
            e.end for e in run.sim.trace if e.name == "cpu_part_R"
        )
        for entry in run.sim.trace:
            if entry.phase == "GPU Join":
                assert entry.start >= r_end - 1e-9

    def test_cpu_compute_is_the_bottleneck(self, system):
        workload = generate_workload(2048, 2048, scale_divisor=65536)
        run = CpuPartitionedJoin(system).run(workload)
        util = run.sim.resource_utilization(
            __import__("repro.sim.resources", fromlist=["ResourcePool"])
            .ResourcePool.for_system(system)
        )
        assert util[res.CPU_CORES] > util[res.NVLINK_TO_GPU]


class TestMultiGpuInternals:
    def test_pool_has_per_gpu_resources(self, system):
        op = MultiGpuTritonJoin(system, gpu_count=2)
        pool = op._pool()
        assert "nvlink_to_gpu[0]" in pool
        assert "nvlink_to_gpu[1]" in pool
        assert "xbus" in pool
        assert pool.capacity("gpu_sm[0]") == system.gpu.total_ops_per_s

    def test_slice_halves_nominal_rows(self, system):
        op = MultiGpuTritonJoin(system, gpu_count=2)
        workload = generate_workload(512, 512, scale_divisor=65536)
        sliced = op._slice_workload(workload)
        assert sliced.build.nominal_rows == workload.build.nominal_rows // 2
