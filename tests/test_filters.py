"""Unit tests for the Bloom-filter pushdown extension (repro.join.filters)."""

import numpy as np
import pytest

from repro.data.generator import generate_workload
from repro.errors import ConfigurationError
from repro.join import TritonJoin, reference_join
from repro.join.filters import BloomFilter, BloomFilteredTritonJoin


class TestBloomFilter:
    KEYS = np.arange(1, 20_001, dtype=np.int64)

    def test_no_false_negatives(self):
        bloom = BloomFilter(self.KEYS)
        assert bloom.contains(self.KEYS).all()

    def test_false_positive_rate_is_low(self):
        bloom = BloomFilter(self.KEYS, bits_per_key=10)
        absent = np.arange(100_000, 200_000, dtype=np.int64)
        fp_rate = bloom.contains(absent).mean()
        assert fp_rate < 0.1
        # And roughly matches the analytic estimate.
        expected = bloom.expected_false_positive_rate(len(self.KEYS))
        assert fp_rate == pytest.approx(expected, abs=0.05)

    def test_more_bits_fewer_false_positives(self):
        absent = np.arange(100_000, 150_000, dtype=np.int64)
        small = BloomFilter(self.KEYS, bits_per_key=4).contains(absent).mean()
        large = BloomFilter(self.KEYS, bits_per_key=16).contains(absent).mean()
        assert large < small

    def test_filter_is_much_smaller_than_a_hash_table(self):
        bloom = BloomFilter(self.KEYS, bits_per_key=10)
        assert bloom.filter_bytes < len(self.KEYS) * 16 / 5

    def test_negative_keys_supported(self):
        keys = np.array([-5, -1, 3], dtype=np.int64)
        bloom = BloomFilter(keys)
        assert bloom.contains(keys).all()

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(np.array([], dtype=np.int64))

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(self.KEYS, bits_per_key=0)


class TestBloomFilteredJoin:
    def test_matches_reference_with_misses(self, system):
        workload = generate_workload(
            0.05, 0.2, probe_hit_rate=0.3, scale_divisor=1, seed=9
        )
        expected = reference_join(workload.build, workload.probe)
        run = BloomFilteredTritonJoin(system).run(workload)
        assert run.match == expected

    def test_matches_reference_full_hit_rate(self, system):
        workload = generate_workload(0.05, 0.1, scale_divisor=1, seed=9)
        expected = reference_join(workload.build, workload.probe)
        run = BloomFilteredTritonJoin(system).run(workload)
        assert run.match == expected

    def test_pass_rate_reported(self, system):
        workload = generate_workload(
            64, 512, probe_hit_rate=0.25, scale_divisor=8192, seed=9
        )
        run = BloomFilteredTritonJoin(system).run(workload)
        # hit rate plus a few false positives.
        assert 0.2 < run.notes["pass_rate"] < 0.4

    def test_filter_pays_off_for_selective_joins(self, system):
        workload = generate_workload(
            256, 2048, probe_hit_rate=0.1, scale_divisor=16384, seed=9
        )
        plain = TritonJoin(system).run(workload)
        filtered = BloomFilteredTritonJoin(system).run(workload)
        assert filtered.seconds < plain.seconds
        assert filtered.match == plain.match

    def test_filter_is_overhead_at_full_hit_rate(self, system):
        workload = generate_workload(512, 512, scale_divisor=16384, seed=9)
        plain = TritonJoin(system).run(workload)
        filtered = BloomFilteredTritonJoin(system).run(workload)
        assert filtered.seconds > plain.seconds
        # ...but the overhead is one cheap key-column scan, not a pass.
        assert filtered.seconds < 1.3 * plain.seconds


class TestSelectiveWorkloadGenerator:
    def test_hit_rate_respected(self):
        workload = generate_workload(
            0.05, 0.5, probe_hit_rate=0.4, scale_divisor=1, seed=1
        )
        hits = np.isin(workload.probe.keys, workload.build.keys).mean()
        assert hits == pytest.approx(0.4, abs=0.03)

    def test_full_hit_rate_default(self):
        workload = generate_workload(0.05, 0.1, scale_divisor=1)
        assert np.isin(workload.probe.keys, workload.build.keys).all()

    def test_rejects_zero_hit_rate(self):
        with pytest.raises(ConfigurationError):
            generate_workload(1, 1, probe_hit_rate=0.0)
