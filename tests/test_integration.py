"""Integration tests: the full stack against the paper's key claims.

These run complete simulated+functional joins on scaled workloads and
assert the paper's qualitative results (who wins where, cliffs,
crossovers). They are the executable summary of EXPERIMENTS.md.
"""

import pytest

from repro.data.generator import generate_workload
from repro.hashing import HashScheme
from repro.join import (
    CachePolicy,
    CpuPartitionedJoin,
    CpuRadixJoin,
    NoPartitioningJoin,
    TritonJoin,
    reference_join,
)

DIVISOR = 16384


def throughput(op, m_tuples):
    workload = generate_workload(m_tuples, m_tuples, scale_divisor=DIVISOR)
    return op.run(workload).throughput_g_tuples_per_s


class TestHeadlineClaims:
    """Abstract + section 6.3 claims."""

    def test_triton_beats_np_join_by_over_100x_with_linear_probing(self, system):
        # Abstract: "outperforms a no-partitioning hash join by more
        # than 100x on the same GPU".
        triton = throughput(TritonJoin(system), 2048)
        np_linear = throughput(
            NoPartitioningJoin(system, HashScheme.LINEAR_PROBING), 2048
        )
        assert triton / np_linear > 100

    def test_triton_beats_cpu_radix_join(self, system):
        # Abstract: "a radix-partitioned join on the CPU by up to 2.5x";
        # our model reproduces a 1.5-2x advantage at scale.
        triton = throughput(TritonJoin(system), 2048)
        cpu = throughput(CpuRadixJoin(system), 2048)
        assert triton / cpu > 1.4

    def test_gpu_scales_beyond_gpu_memory(self, system):
        # 61 GiB of data vs 16 GiB of GPU memory: still fast.
        assert throughput(TritonJoin(system), 2048) > 1.5

    def test_crossover_against_np_join(self, system):
        # Fig. 1: the NP join wins in-core, Triton wins out-of-core.
        np_perfect = NoPartitioningJoin(system, HashScheme.PERFECT)
        triton = TritonJoin(system)
        assert throughput(np_perfect, 128) > throughput(triton, 128)
        assert throughput(triton, 2048) > throughput(np_perfect, 2048)


class TestRobustness:
    """Section 1's robustness challenge: no performance cliffs."""

    def test_triton_throughput_is_smooth(self, system):
        sizes = (128, 512, 1024, 1536, 2048)
        curve = [throughput(TritonJoin(system), size) for size in sizes]
        # No consecutive drop larger than 15%.
        for a, b in zip(curve, curve[1:]):
            assert b > 0.85 * a

    def test_np_join_has_a_cliff(self, system):
        op = NoPartitioningJoin(system, HashScheme.PERFECT)
        curve = [throughput(op, size) for size in (512, 1024)]
        assert curve[1] < 0.35 * curve[0]


class TestEfficiency:
    """Section 1's efficiency challenge: offload the CPU."""

    def test_gpu_partitioned_beats_cpu_partitioned(self, system):
        for size in (512, 2048):
            assert throughput(TritonJoin(system), size) > throughput(
                CpuPartitionedJoin(system), size
            )

    def test_hashing_scheme_barely_matters_for_triton(self, system):
        # Section 6.2.1: bucket chaining within 0-2% of perfect hashing.
        bucket = throughput(TritonJoin(system, HashScheme.BUCKET_CHAINING), 2048)
        perfect = throughput(TritonJoin(system, HashScheme.PERFECT), 2048)
        assert abs(bucket - perfect) / perfect < 0.05

    def test_hashing_scheme_decides_np_join_fate(self, system):
        perfect = throughput(NoPartitioningJoin(system, HashScheme.PERFECT), 2048)
        linear = throughput(
            NoPartitioningJoin(system, HashScheme.LINEAR_PROBING), 2048
        )
        assert perfect / linear > 50


class TestCorrectnessAcrossConfigurations:
    @pytest.mark.parametrize("m_tuples", [64, 512])
    @pytest.mark.parametrize("ratio", [1, 8])
    def test_everything_agrees(self, system, m_tuples, ratio):
        workload = generate_workload(
            m_tuples, m_tuples * ratio, scale_divisor=DIVISOR, seed=m_tuples
        )
        expected = reference_join(workload.build, workload.probe)
        for op in (
            TritonJoin(system),
            TritonJoin(system, cache_policy=CachePolicy.NONE),
            NoPartitioningJoin(system),
            CpuRadixJoin(system),
            CpuPartitionedJoin(system),
        ):
            assert op.run(workload).match == expected, op.name

    def test_wide_tuples(self, system):
        workload = generate_workload(
            32, 64, payload_columns=4, scale_divisor=DIVISOR
        )
        expected = reference_join(workload.build, workload.probe)
        assert TritonJoin(system).run(workload).match == expected
