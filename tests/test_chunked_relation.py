"""ChunkedRelation: disk-shard round-trips and partition-range reads."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.chunked import MIN_SHARD_ROWS, ChunkedRelation
from repro.data.relation import Relation
from repro.errors import ConfigurationError
from repro.hashing.functions import hash_u64, radix_window


def make_relation(rows, seed=0, payload_columns=1, name="R"):
    rng = np.random.default_rng(seed)
    keys = rng.permutation(rows).astype(np.int64) + 1
    payloads = {
        f"attr{i}": rng.integers(0, 2**40, rows).astype(np.int64)
        for i in range(payload_columns)
    }
    return Relation(keys, payloads, name=name)


def row_order(relation):
    """A permutation sorting the relation's rows lexicographically."""
    columns = [relation.column(c) for c in relation.column_names()]
    return np.lexsort(tuple(reversed(columns)))


def assert_same_rows(a: Relation, b: Relation):
    """The two relations hold the same multiset of rows (any order)."""
    assert a.column_names() == b.column_names()
    assert len(a) == len(b)
    oa, ob = row_order(a), row_order(b)
    for column in a.column_names():
        np.testing.assert_array_equal(
            a.column(column)[oa], b.column(column)[ob]
        )


class TestRoundTrip:
    def test_bits0_is_byte_identical_row_for_row(self, tmp_path):
        relation = make_relation(3000, seed=1, payload_columns=2)
        chunked = ChunkedRelation.from_relation(
            relation, tmp_path / "r", shard_rows=700, bits=0
        )
        back = chunked.to_relation()
        for column in relation.column_names():
            np.testing.assert_array_equal(
                back.column(column), relation.column(column)
            )
        assert back.nominal_rows == relation.nominal_rows
        assert back.name == relation.name

    def test_partitioned_round_trip_preserves_rows(self, tmp_path):
        relation = make_relation(2500, seed=2, payload_columns=2)
        chunked = ChunkedRelation.from_relation(
            relation, tmp_path / "r", shard_rows=600, bits=3
        )
        assert_same_rows(chunked.to_relation(), relation)

    def test_reopen_from_meta_sees_the_same_relation(self, tmp_path):
        relation = make_relation(1500, seed=3)
        written = ChunkedRelation.from_relation(
            relation, tmp_path / "r", shard_rows=512, bits=2
        )
        reopened = ChunkedRelation(tmp_path / "r")
        assert reopened.columns == written.columns
        assert reopened.shards == written.shards
        assert reopened.shard_rows == written.shard_rows
        assert reopened.bits == written.bits
        assert len(reopened) == len(relation)
        assert_same_rows(reopened.to_relation(), relation)

    def test_empty_relation(self, tmp_path):
        relation = make_relation(0)
        chunked = ChunkedRelation.from_relation(
            relation, tmp_path / "r", shard_rows=512, bits=2
        )
        assert chunked.shards == 0
        assert len(chunked) == 0
        assert len(chunked.to_relation()) == 0
        np.testing.assert_array_equal(
            chunked.partition_sizes(), np.zeros(4, dtype=np.int64)
        )


class TestPartitionReads:
    def test_partition_ranges_cover_exactly_the_radix_partitions(
        self, tmp_path
    ):
        bits = 3
        relation = make_relation(2200, seed=4)
        chunked = ChunkedRelation.from_relation(
            relation, tmp_path / "r", shard_rows=512, bits=bits
        )
        sizes = chunked.partition_sizes()
        assert sizes.sum() == len(relation)
        seen = 0
        for p in range(chunked.fanout):
            keys = chunked.partition_range_column("key", p, p + 1)
            assert len(keys) == sizes[p]
            if len(keys):
                selector = radix_window(hash_u64(keys), bits, 0)
                assert (selector == p).all()
            groups = chunked.partition_range_groups(p, p + 1)
            np.testing.assert_array_equal(
                groups, np.full(len(keys), p, dtype=np.int64)
            )
            seen += len(keys)
        assert seen == len(relation)

    def test_multi_partition_range_matches_per_partition_reads(
        self, tmp_path
    ):
        relation = make_relation(1800, seed=5)
        chunked = ChunkedRelation.from_relation(
            relation, tmp_path / "r", shard_rows=512, bits=2
        )
        combined = chunked.partition_range_column("key", 1, 3)
        groups = chunked.partition_range_groups(1, 3)
        assert len(combined) == len(groups)
        assert set(np.unique(groups)) <= {1, 2}
        sizes = chunked.partition_sizes()
        assert len(combined) == sizes[1] + sizes[2]
        # The same rows, partition by partition.
        per_partition = np.concatenate(
            [np.sort(chunked.partition_range_column("key", p, p + 1))
             for p in (1, 2)]
        )
        np.testing.assert_array_equal(
            np.sort(combined), np.sort(per_partition)
        )

    def test_shard_column_memory_maps_by_default(self, tmp_path):
        relation = make_relation(1024, seed=6)
        chunked = ChunkedRelation.from_relation(
            relation, tmp_path / "r", shard_rows=512, bits=0
        )
        assert isinstance(chunked.shard_column(0, "key"), np.memmap)
        assert not isinstance(
            chunked.shard_column(0, "key", mmap=False), np.memmap
        )


class TestLifecycleAndErrors:
    def test_delete_removes_the_directory(self, tmp_path):
        relation = make_relation(600, seed=7)
        chunked = ChunkedRelation.from_relation(
            relation, tmp_path / "r", shard_rows=512
        )
        assert chunked.bytes_on_disk() > 0
        chunked.delete()
        assert not (tmp_path / "r").exists()

    def test_tiny_shard_rows_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ChunkedRelation.from_relation(
                make_relation(600), tmp_path / "r",
                shard_rows=MIN_SHARD_ROWS - 1,
            )

    def test_negative_bits_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ChunkedRelation.from_relation(
                make_relation(600), tmp_path / "r", shard_rows=512, bits=-1
            )

    def test_unknown_column_rejected(self, tmp_path):
        chunked = ChunkedRelation.from_relation(
            make_relation(600), tmp_path / "r", shard_rows=512
        )
        with pytest.raises(ConfigurationError):
            chunked.shard_column(0, "nope")

    def test_missing_or_foreign_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ChunkedRelation(tmp_path / "missing")
        (tmp_path / "bad").mkdir()
        (tmp_path / "bad" / "meta.json").write_text(
            json.dumps({"format": 999})
        )
        with pytest.raises(ConfigurationError):
            ChunkedRelation(tmp_path / "bad")


@st.composite
def relations(draw):
    rows = draw(st.integers(min_value=0, max_value=2000))
    payload_columns = draw(st.integers(min_value=0, max_value=2))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return make_relation(rows, seed=seed, payload_columns=payload_columns)


@given(
    relations(),
    st.integers(min_value=MIN_SHARD_ROWS, max_value=1500),
    st.integers(min_value=0, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_property_round_trip(tmp_path_factory, relation, shard_rows, bits):
    """Any relation survives sharding at any (shard_rows, bits).

    ``bits=0`` must be byte-identical row for row; partitioned layouts
    must preserve the multiset of whole rows (keys stay glued to their
    payloads through the permutation).
    """
    directory = tmp_path_factory.mktemp("chunk")
    chunked = ChunkedRelation.from_relation(
        relation, directory / "r", shard_rows=shard_rows, bits=bits
    )
    back = chunked.to_relation()
    if bits == 0:
        for column in relation.column_names():
            np.testing.assert_array_equal(
                back.column(column), relation.column(column)
            )
    else:
        assert_same_rows(back, relation)
    assert chunked.partition_sizes().sum() == len(relation)
    chunked.delete()
