"""Unit tests for memory spaces and the interleaved cache (repro.hw.memory)."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hw.memory import InterleavedMapping, MemorySpace, PageAllocator
from repro.hw.tlb import MemSpace
from repro.units import GIB, MIB


class TestMemorySpace:
    def make(self, capacity=1 * GIB):
        return MemorySpace(MemSpace.GPU, capacity, 2 * MIB)

    def test_alloc_rounds_to_pages(self):
        space = self.make()
        allocation = space.alloc("a", 1)
        assert allocation.bytes == 2 * MIB

    def test_alloc_tracks_usage(self):
        space = self.make()
        space.alloc("a", 10 * MIB)
        assert space.allocated_bytes == 10 * MIB
        assert space.free_bytes == 1 * GIB - 10 * MIB

    def test_capacity_enforced(self):
        space = self.make(capacity=10 * MIB)
        space.alloc("a", 8 * MIB)
        with pytest.raises(CapacityError):
            space.alloc("b", 4 * MIB)

    def test_duplicate_name_rejected(self):
        space = self.make()
        space.alloc("a", MIB)
        with pytest.raises(ConfigurationError):
            space.alloc("a", MIB)

    def test_free_releases(self):
        space = self.make()
        space.alloc("a", 100 * MIB)
        space.free("a")
        assert space.allocated_bytes == 0
        assert "a" not in space

    def test_free_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().free("ghost")

    def test_reset(self):
        space = self.make()
        space.alloc("a", MIB)
        space.alloc("b", MIB)
        space.reset()
        assert space.allocated_bytes == 0


class TestPageAllocator:
    def test_spaces_are_independent(self):
        allocator = PageAllocator(16 * GIB, 128 * GIB)
        allocator.alloc("state", 10 * GIB, MemSpace.GPU)
        allocator.alloc("state", 100 * GIB, MemSpace.CPU)
        assert allocator.gpu.allocated_bytes == 10 * GIB
        assert allocator.cpu.allocated_bytes == 100 * GIB

    def test_gpu_capacity_is_the_papers(self):
        allocator = PageAllocator(16 * GIB, 128 * GIB)
        with pytest.raises(CapacityError):
            allocator.alloc("too_big", 17 * GIB, MemSpace.GPU)

    def test_reset_clears_both(self):
        allocator = PageAllocator(16 * GIB, 128 * GIB)
        allocator.alloc("a", GIB, MemSpace.GPU)
        allocator.reset()
        assert allocator.gpu.allocated_bytes == 0


class TestInterleavedMapping:
    """The Fig. 12 layout: GPU/CPU pages interleaved proportionally."""

    def test_byte_split(self):
        mapping = InterleavedMapping(
            total_bytes=90 * MIB, gpu_bytes=30 * MIB, page_bytes=2 * MIB
        )
        assert mapping.cpu_bytes == 60 * MIB
        assert mapping.gpu_fraction == pytest.approx(1 / 3)

    def test_one_gpu_page_after_every_two_cpu_pages(self):
        # The paper's example interval pattern at a 1:2 ratio.
        mapping = InterleavedMapping(
            total_bytes=90 * MIB, gpu_bytes=30 * MIB, page_bytes=2 * MIB
        )
        runs = mapping.run_lengths()
        cpu_runs = [n for space, n in runs if space is MemSpace.CPU]
        gpu_runs = [n for space, n in runs if space is MemSpace.GPU]
        assert all(n == 1 for n in gpu_runs)
        assert all(n == 2 for n in cpu_runs)

    def test_page_count_matches_fraction(self):
        mapping = InterleavedMapping(
            total_bytes=100 * 2 * MIB, gpu_bytes=25 * 2 * MIB,
            page_bytes=2 * MIB,
        )
        gpu_pages = sum(
            1 for _, space in mapping.iter_pages() if space is MemSpace.GPU
        )
        assert gpu_pages == 25

    def test_all_gpu(self):
        mapping = InterleavedMapping(
            total_bytes=10 * MIB, gpu_bytes=10 * MIB, page_bytes=2 * MIB
        )
        assert all(space is MemSpace.GPU for _, space in mapping.iter_pages())

    def test_all_cpu(self):
        mapping = InterleavedMapping(
            total_bytes=10 * MIB, gpu_bytes=0, page_bytes=2 * MIB
        )
        assert all(space is MemSpace.CPU for _, space in mapping.iter_pages())

    def test_interleaving_is_spread_not_clustered(self):
        # Error diffusion: no run of same-space pages exceeds the ratio.
        mapping = InterleavedMapping(
            total_bytes=1000 * 2 * MIB, gpu_bytes=300 * 2 * MIB,
            page_bytes=2 * MIB,
        )
        runs = mapping.run_lengths()
        assert max(n for space, n in runs if space is MemSpace.CPU) <= 3

    def test_split_bytes(self):
        mapping = InterleavedMapping(
            total_bytes=100, gpu_bytes=40, page_bytes=2 * MIB
        )
        gpu_part, cpu_part = mapping.split_bytes(50)
        assert gpu_part == pytest.approx(20)
        assert cpu_part == pytest.approx(30)

    def test_gpu_cannot_exceed_total(self):
        with pytest.raises(ConfigurationError):
            InterleavedMapping(total_bytes=10, gpu_bytes=20, page_bytes=2 * MIB)

    def test_page_index_bounds(self):
        mapping = InterleavedMapping(
            total_bytes=4 * MIB, gpu_bytes=2 * MIB, page_bytes=2 * MIB
        )
        with pytest.raises(ConfigurationError):
            mapping.page_space(2)

    def test_empty_mapping(self):
        mapping = InterleavedMapping(0, 0, 2 * MIB)
        assert mapping.page_count == 0
        assert mapping.gpu_fraction == 0.0
        assert mapping.run_lengths() == []
