"""Unit tests for repro.units."""

import pytest

from repro import units


class TestByteUnits:
    def test_binary_units_scale_by_1024(self):
        assert units.MIB == 1024 * units.KIB
        assert units.GIB == 1024 * units.MIB
        assert units.TIB == 1024 * units.GIB

    def test_decimal_units_scale_by_1000(self):
        assert units.GB == 1000 * units.MB == 1_000_000 * units.KB

    def test_gib_round_trip(self):
        assert units.to_gib(units.gib(2.5)) == pytest.approx(2.5)

    def test_mib_round_trip(self):
        assert units.to_mib(units.mib(7)) == pytest.approx(7.0)

    def test_rates(self):
        assert units.gib_per_s(1) == units.GIB
        assert units.gb_per_s(75) == 75e9


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("64B", 64),
            ("600K", 600 * units.KIB),
            ("1.5M", int(1.5 * units.MIB)),
            ("2MiB", 2 * units.MIB),
            ("1G", units.GIB),
            ("1gb", units.GIB),
            (" 2 T ", 2 * units.TIB),
        ],
    )
    def test_accepted_spellings(self, text, expected):
        assert units.parse_bytes(text) == expected

    @pytest.mark.parametrize("text", ["", "G", "1X", "-5M", "0"])
    def test_rejected_spellings(self, text):
        with pytest.raises(ValueError):
            units.parse_bytes(text)


class TestThroughput:
    def test_g_tuples_per_s(self):
        assert units.g_tuples_per_s(2e9, 1.0) == pytest.approx(2.0)

    def test_g_tuples_per_s_uses_total_cardinality_over_runtime(self):
        # The paper's definition: (|R| + |S|) / runtime.
        assert units.g_tuples_per_s(4096e6, 2.0) == pytest.approx(2.048)

    def test_zero_runtime_rejected(self):
        with pytest.raises(ValueError):
            units.g_tuples_per_s(1.0, 0.0)

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            units.g_tuples_per_s(1.0, -1.0)


class TestPowersOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 1024, 2**30])
    def test_is_power_of_two_true(self, n):
        assert units.is_power_of_two(n)

    @pytest.mark.parametrize("n", [0, -2, 3, 6, 1000])
    def test_is_power_of_two_false(self, n):
        assert not units.is_power_of_two(n)

    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 4), (1000, 1024), (1025, 2048)]
    )
    def test_next_power_of_two(self, n, expected):
        assert units.next_power_of_two(n) == expected

    def test_next_power_of_two_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.next_power_of_two(0)


class TestAlignment:
    def test_align_up(self):
        assert units.align_up(100, 128) == 128
        assert units.align_up(128, 128) == 128
        assert units.align_up(129, 128) == 256

    def test_align_down(self):
        assert units.align_down(100, 128) == 0
        assert units.align_down(129, 128) == 128

    def test_alignment_must_be_positive(self):
        with pytest.raises(ValueError):
            units.align_up(1, 0)
        with pytest.raises(ValueError):
            units.align_down(1, -128)
