"""Unit tests for repro.telemetry: spans, metrics, exporters, CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.bench.__main__ import main as cli_main
from repro.data.generator import generate_workload
from repro.join import TritonJoin, run_cache
from repro.sim.visualize import main as viz_main
from repro.telemetry.export import (
    SIM_PID_BASE,
    chrome_trace_document,
    format_span_tree,
    validate_chrome_trace,
)
from repro.telemetry.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with telemetry disabled and empty."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


class TestDisabledMode:
    def test_span_is_shared_noop(self):
        assert telemetry.span("anything", x=1) is telemetry.NULL_SPAN
        assert telemetry.span("other") is telemetry.NULL_SPAN

    def test_noop_span_accepts_protocol(self):
        with telemetry.span("a", n=3) as sp:
            sp.set(path="dense")
        assert telemetry.collector().spans == []

    def test_annotate_is_noop(self):
        telemetry.annotate(path="dense")  # must not raise
        assert telemetry.collector().spans == []

    def test_traced_decorator_passthrough(self):
        @telemetry.traced("work")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert telemetry.collector().spans == []

    def test_add_sim_result_is_noop(self):
        class Fake:
            trace = []
            makespan_seconds = 0.0

        telemetry.add_sim_result(Fake())
        assert telemetry.collector().virtual_tracks == []


class TestSpans:
    def test_nesting_records_depth_and_parent(self):
        telemetry.enable()
        with telemetry.span("outer") as outer:
            with telemetry.span("inner") as inner:
                assert inner.depth == 1
                assert inner.parent == outer.span_id
        spans = {s.name: s for s in telemetry.collector().spans}
        assert spans["outer"].depth == 0
        assert spans["inner"].start >= spans["outer"].start
        assert spans["inner"].end <= spans["outer"].end

    def test_attrs_via_kwargs_set_and_annotate(self):
        telemetry.enable()
        with telemetry.span("k", n=5) as sp:
            sp.set(path="dense")
            telemetry.annotate(hits=2)
        (span,) = telemetry.collector().spans
        assert span.attrs == {"n": 5, "path": "dense", "hits": 2}

    def test_traced_decorator_records(self):
        telemetry.enable()

        @telemetry.traced("mul", kind="test")
        def mul(a, b):
            return a * b

        assert mul(3, 4) == 12
        (span,) = telemetry.collector().spans
        assert span.name == "mul"
        assert span.attrs == {"kind": "test"}

    def test_exception_unwinds_open_spans(self):
        telemetry.enable()
        with pytest.raises(ValueError):
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    raise ValueError("boom")
        assert telemetry.collector().stack == []
        assert {s.name for s in telemetry.collector().spans} == {
            "outer",
            "inner",
        }
        assert all(s.end is not None for s in telemetry.collector().spans)

    def test_span_tree_text(self):
        telemetry.enable()
        with telemetry.span("outer", tuples=8):
            with telemetry.span("inner"):
                pass
        tree = format_span_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "tuples=8" in lines[0]

    def test_chrome_export_contains_nested_events(self):
        telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        doc = chrome_trace_document()
        assert validate_chrome_trace(doc) == []
        events = {
            e["name"]: e for e in doc["traceEvents"] if e.get("ph") == "X"
        }
        outer, inner = events["outer"], events["inner"]
        assert outer["cat"] == inner["cat"] == "host"
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 0.01


class TestMetrics:
    def test_count_gauge_observe(self):
        reg = MetricsRegistry()
        reg.count("a.hits")
        reg.count("a.hits", 2)
        reg.gauge("a.level", 0.5)
        reg.observe("a.seconds", 0.25)
        snap = reg.snapshot()
        assert snap["counters"] == {"a.hits": 3}
        assert snap["gauges"] == {"a.level": 0.5}
        assert snap["timings"]["a.seconds"]["count"] == 1
        assert snap["timings"]["a.seconds"]["total_seconds"] == 0.25

    def test_counters_prefix_filter(self):
        reg = MetricsRegistry()
        reg.count("x.one")
        reg.count("y.two")
        assert reg.counters("x.") == {"x.one": 1}
        assert reg.counter("missing") == 0

    def test_delta_since_ignores_earlier_work(self):
        reg = MetricsRegistry()
        reg.count("k", 5)
        reg.observe("t", 1.0)
        before = reg.snapshot()
        reg.count("k", 2)
        reg.observe("t", 3.0)
        delta = reg.delta_since(before)
        assert delta["counters"] == {"k": 2}
        assert delta["timings"]["t"]["count"] == 1
        assert delta["timings"]["t"]["total_seconds"] == pytest.approx(3.0)

    def test_merge_folds_snapshot(self):
        reg = MetricsRegistry()
        reg.count("k", 1)
        other = MetricsRegistry()
        other.count("k", 2)
        other.observe("t", 0.5)
        reg.merge(other.snapshot())
        assert reg.counter("k") == 3
        assert reg.snapshot()["timings"]["t"]["count"] == 1

    def test_reset_prefix_only(self):
        reg = MetricsRegistry()
        reg.count("run_cache.hits")
        reg.count("kernels.calls")
        reg.reset(prefix="run_cache.")
        assert reg.counter("run_cache.hits") == 0
        assert reg.counter("kernels.calls") == 1


class TestMultiprocessMerge:
    def test_absorbed_snapshot_exports_as_own_process(self):
        telemetry.enable()
        with telemetry.span("local"):
            pass
        worker = {
            "pid": 4242,
            "spans": [
                {
                    "name": "remote",
                    "start": 0.0,
                    "end": 0.5,
                    "depth": 0,
                    "parent": None,
                    "attrs": {"experiment": "fig13"},
                }
            ],
            "virtual": [
                {
                    "label": "worker sim",
                    "makespan_seconds": 1.0,
                    "entries": [("join[0]", "Join", 0.0, 1.0)],
                }
            ],
        }
        telemetry.absorb_trace(worker, label="worker: fig13")
        doc = chrome_trace_document()
        assert validate_chrome_trace(doc) == []
        complete = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        pids = {e["pid"] for e in complete}
        assert 4242 in pids
        assert any(pid >= SIM_PID_BASE for pid in pids)
        assert len(pids) >= 3  # local host, worker host, worker sim track

    def test_drain_prevents_double_reporting(self):
        telemetry.enable()
        with telemetry.span("first"):
            pass
        first = telemetry.trace_snapshot(drain=True)
        assert [s["name"] for s in first["spans"]] == ["first"]
        with telemetry.span("second"):
            pass
        second = telemetry.trace_snapshot(drain=True)
        assert [s["name"] for s in second["spans"]] == ["second"]

    def test_registry_delta_merge_roundtrip(self):
        telemetry.registry.count("run_cache.hits", 3)
        before = telemetry.registry.snapshot()
        telemetry.registry.count("run_cache.hits", 4)
        delta = telemetry.registry.delta_since(before)
        fresh = MetricsRegistry()
        fresh.merge(delta)
        assert fresh.counter("run_cache.hits") == 4


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"nope": 1}) != []

    def test_flags_missing_keys_and_negatives(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "a", "ts": 0, "dur": 1, "pid": 1},
                {
                    "ph": "X",
                    "name": "b",
                    "ts": -1,
                    "dur": 1,
                    "pid": 1,
                    "tid": 1,
                },
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("missing" in p for p in problems)
        assert any("negative ts" in p for p in problems)

    def test_flags_host_overlap_without_nesting(self):
        doc = {
            "traceEvents": [
                {
                    "ph": "X", "name": "a", "cat": "host",
                    "ts": 0, "dur": 100, "pid": 1, "tid": 1,
                },
                {
                    "ph": "X", "name": "b", "cat": "host",
                    "ts": 50, "dur": 100, "pid": 1, "tid": 1,
                },
            ]
        }
        assert any(
            "overlaps" in p for p in validate_chrome_trace(doc)
        )

    def test_sim_overlap_is_legal(self):
        doc = {
            "traceEvents": [
                {
                    "ph": "X", "name": "a", "cat": "sim",
                    "ts": 0, "dur": 100, "pid": SIM_PID_BASE, "tid": 1,
                },
                {
                    "ph": "X", "name": "b", "cat": "sim",
                    "ts": 50, "dur": 100, "pid": SIM_PID_BASE, "tid": 2,
                },
            ]
        }
        assert validate_chrome_trace(doc) == []

    def test_empty_trace_is_a_problem(self):
        assert validate_chrome_trace({"traceEvents": []}) != []


class TestOperatorInstrumentation:
    def test_run_wrapper_spans_and_sim_track(self, system):
        telemetry.enable()
        workload = generate_workload(128, 512, scale_divisor=65536)
        TritonJoin(system).run(workload)
        names = [s.name for s in telemetry.collector().spans]
        assert any(n.startswith("run:") for n in names)
        assert "functional" in names
        assert "simulate" in names
        assert "batched_radix_join" in names
        assert len(telemetry.collector().virtual_tracks) == 1
        doc = chrome_trace_document()
        assert validate_chrome_trace(doc) == []

    def test_run_cache_annotates_hit(self, system):
        telemetry.enable()
        run_cache.enable()
        try:
            workload = generate_workload(128, 512, scale_divisor=65536)
            op = TritonJoin(system)
            op.run(workload)
            op.run(workload)
        finally:
            run_cache.disable()
            run_cache.clear()
        run_spans = [
            s for s in telemetry.collector().spans if s.name.startswith("run:")
        ]
        assert [s.attrs.get("run_cache") for s in run_spans] == [
            "miss",
            "hit",
        ]

    def test_disabled_run_records_nothing(self, system):
        workload = generate_workload(128, 512, scale_divisor=65536)
        TritonJoin(system).run(workload)
        assert telemetry.collector().spans == []
        assert telemetry.collector().virtual_tracks == []


class TestBenchCliTrace:
    def test_trace_and_metrics_files(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = cli_main(
            [
                "fig13",
                "--sizes", "128",
                "--divisor", "1048576",
                "--trace", str(trace_path),
                "--metrics", str(metrics_path),
            ]
        )
        assert code == 0
        doc = json.loads(trace_path.read_text())
        assert validate_chrome_trace(doc) == []
        complete = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert any(e.get("cat") == "host" for e in complete)
        assert any(e["pid"] >= SIM_PID_BASE for e in complete)
        assert any(
            e["name"].startswith("experiment:fig13") for e in complete
        )
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"].get("run_cache.misses", 0) > 0

    def test_cli_leaves_telemetry_disabled(self, tmp_path):
        cli_main(
            [
                "fig13",
                "--sizes", "128",
                "--divisor", "1048576",
                "--trace", str(tmp_path / "t.json"),
            ]
        )
        assert not telemetry.enabled()
        assert telemetry.collector().spans == []


class TestVisualizeCli:
    def test_chrome_format_is_valid(self, tmp_path, capsys):
        out = tmp_path / "sim.trace.json"
        code = viz_main(
            [
                "triton",
                "--size", "128",
                "--divisor", "1048576",
                "--format", "chrome",
                "--output", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert all(
            e["pid"] == SIM_PID_BASE
            for e in doc["traceEvents"]
            if e.get("ph") == "X"
        )

    def test_json_format_reports_truncation(self, capsys):
        code = viz_main(
            [
                "triton",
                "--size", "128",
                "--divisor", "1048576",
                "--format", "json",
                "--max-rows", "3",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["tasks"]) == 3
        assert payload["truncated_tasks"] > 0

    def test_chrome_format_reports_truncation(self, capsys):
        code = viz_main(
            [
                "triton",
                "--size", "128",
                "--divisor", "1048576",
                "--format", "chrome",
                "--max-rows", "3",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["otherData"]["truncated_tasks"] > 0

    def test_text_format_reports_truncation(self, capsys):
        code = viz_main(
            [
                "triton",
                "--size", "128",
                "--divisor", "1048576",
                "--by-task",
                "--max-rows", "3",
            ]
        )
        assert code == 0
        assert "more tasks" in capsys.readouterr().out


class TestCounterTracks:
    """Per-resource utilization counter (ph "C") events on sim tracks."""

    def test_sim_track_emits_counter_events(self, system):
        telemetry.enable()
        workload = generate_workload(128, 512, scale_divisor=65536)
        TritonJoin(system).run(workload)
        doc = chrome_trace_document()
        assert validate_chrome_trace(doc) == []
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert counters, "sim track should carry utilization counters"
        names = {e["name"] for e in counters}
        assert any(name.startswith("util:nvlink") for name in names)
        assert all(e["pid"] >= SIM_PID_BASE for e in counters)

    def test_counter_samples_are_valid_utilization(self, system):
        telemetry.enable()
        workload = generate_workload(128, 512, scale_divisor=65536)
        TritonJoin(system).run(workload)
        doc = chrome_trace_document()
        for event in doc["traceEvents"]:
            if event.get("ph") != "C":
                continue
            for value in event["args"].values():
                assert 0.0 <= value <= 1.0 + 1e-9

    def test_counters_survive_snapshot_roundtrip(self, system):
        telemetry.enable()
        workload = generate_workload(128, 512, scale_divisor=65536)
        TritonJoin(system).run(workload)
        snapshot = telemetry.trace_snapshot(drain=True)
        telemetry.absorb_trace(snapshot, label="worker: fig")
        doc = chrome_trace_document()
        assert validate_chrome_trace(doc) == []
        assert any(e.get("ph") == "C" for e in doc["traceEvents"])

    def test_fake_result_without_occupancy_still_works(self):
        telemetry.enable()

        class Fake:
            trace = []
            makespan_seconds = 1.0

        telemetry.add_sim_result(Fake(), label="fake")
        (track,) = telemetry.collector().virtual_tracks
        assert "counters" not in track


class TestCounterValidation:
    def _counter(self, **overrides):
        event = {
            "ph": "C",
            "name": "util:nvlink_to_gpu",
            "ts": 0.0,
            "pid": SIM_PID_BASE,
            "tid": 0,
            "args": {"utilization": 0.5},
        }
        event.update(overrides)
        return event

    def _doc(self, counter):
        anchor = {
            "ph": "X", "name": "a", "cat": "sim",
            "ts": 0, "dur": 1, "pid": SIM_PID_BASE, "tid": 1,
        }
        return {"traceEvents": [counter, anchor]}

    def test_valid_counter_passes(self):
        assert validate_chrome_trace(self._doc(self._counter())) == []

    def test_missing_args_flagged(self):
        event = self._counter()
        del event["args"]
        problems = validate_chrome_trace(self._doc(event))
        assert any("missing" in p for p in problems)

    def test_empty_args_flagged(self):
        problems = validate_chrome_trace(self._doc(self._counter(args={})))
        assert any("no sample values" in p for p in problems)

    def test_negative_sample_rejected(self):
        problems = validate_chrome_trace(
            self._doc(self._counter(args={"utilization": -0.1}))
        )
        assert any("negative" in p for p in problems)

    def test_nan_sample_rejected(self):
        problems = validate_chrome_trace(
            self._doc(self._counter(args={"utilization": float("nan")}))
        )
        assert any("not finite" in p for p in problems)

    def test_infinite_sample_rejected(self):
        problems = validate_chrome_trace(
            self._doc(self._counter(args={"utilization": float("inf")}))
        )
        assert any("not finite" in p for p in problems)

    def test_non_numeric_sample_rejected(self):
        problems = validate_chrome_trace(
            self._doc(self._counter(args={"utilization": "busy"}))
        )
        assert any("not numeric" in p for p in problems)

    def test_negative_counter_ts_rejected(self):
        problems = validate_chrome_trace(self._doc(self._counter(ts=-1.0)))
        assert any("negative ts" in p for p in problems)


class TestPeakGaugeMerge:
    def test_peak_gauges_merge_via_max(self):
        """Out-of-order worker deltas must not regress a peak gauge.

        ``process.peak_rss_bytes`` is a high-water mark: if the worker
        that peaked higher reports *first*, last-write-wins merging
        would let the later, smaller delta overwrite the fleet peak.
        """
        reg = MetricsRegistry()
        high = MetricsRegistry()
        high.gauge("process.peak_rss_bytes", 900.0)
        low = MetricsRegistry()
        low.gauge("process.peak_rss_bytes", 400.0)
        # The higher peak arrives first — deliberately out of order.
        reg.merge(high.snapshot())
        reg.merge(low.snapshot())
        assert reg.snapshot()["gauges"]["process.peak_rss_bytes"] == 900.0

    def test_non_peak_gauges_keep_last_write_wins(self):
        reg = MetricsRegistry()
        first = MetricsRegistry()
        first.gauge("exec.pool.occupancy", 0.9)
        second = MetricsRegistry()
        second.gauge("exec.pool.occupancy", 0.3)
        reg.merge(first.snapshot())
        reg.merge(second.snapshot())
        # A point-in-time gauge reports the latest observation.
        assert reg.snapshot()["gauges"]["exec.pool.occupancy"] == 0.3

    def test_timing_quantiles_from_registry(self):
        reg = MetricsRegistry()
        for seconds in (0.01, 0.02, 0.02, 0.5):
            reg.observe("bench.experiment_seconds", seconds)
        quantiles = reg.timing_quantiles("bench.experiment_seconds")
        assert set(quantiles) == {"p50", "p90", "p99"}
        assert quantiles["p50"] <= quantiles["p90"] <= quantiles["p99"]
        assert reg.timing_quantiles("no.such.timing") is None


class TestInstantValidation:
    def _doc(self, event):
        anchor = {
            "ph": "X", "name": "a", "cat": "host",
            "ts": 0, "dur": 1, "pid": 1, "tid": 0,
        }
        return {"traceEvents": [event, anchor]}

    def _instant(self, **overrides):
        event = {
            "name": "fault.injected",
            "cat": "recorder",
            "ph": "i",
            "s": "p",
            "ts": 10.0,
            "pid": 1,
            "tid": 0,
        }
        event.update(overrides)
        return event

    def test_valid_instant_passes(self):
        assert validate_chrome_trace(self._doc(self._instant())) == []

    def test_missing_keys_flagged(self):
        problems = validate_chrome_trace(
            self._doc({"ph": "i", "name": "x"})
        )
        assert any("missing" in p for p in problems)

    def test_negative_ts_flagged(self):
        problems = validate_chrome_trace(self._doc(self._instant(ts=-1.0)))
        assert any("negative ts" in p for p in problems)

    def test_bad_scope_flagged(self):
        problems = validate_chrome_trace(self._doc(self._instant(s="z")))
        assert any("scope" in p for p in problems)

    def test_recorder_instants_render_from_events(self):
        from repro.telemetry import events
        from repro.telemetry.export import recorder_instant_events

        telemetry.enable()
        events.enable()
        try:
            with telemetry.span("experiment:x"):
                events.emit("fault.injected", kind="k", target="t")
                events.emit("run.start", operator="op")  # not an instant
            instants = recorder_instant_events(
                telemetry.spans.collector().wall_epoch
            )
        finally:
            events.disable()
            events.reset()
        assert [e["name"] for e in instants] == ["fault.injected"]
        instant = instants[0]
        assert instant["ph"] == "i"
        assert instant["cat"] == "recorder"
        assert instant["s"] == "p"
        assert instant["ts"] >= 0
        assert instant["args"]["kind"] == "k"
