"""Unit tests for the CPU model (repro.hw.cpu) and power (repro.hw.power)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.cpu import CpuModel
from repro.hw.interconnect import AccessPattern, Op
from repro.hw.power import PowerModel, PowerReading
from repro.units import GIB, MIB


class TestCpuMemory:
    def test_sequential_at_achievable_rate(self, cpu_model):
        cost = cpu_model.access_cost(130 * GIB, Op.READ)
        assert cost.seconds == pytest.approx(1.0)

    def test_random_writes_slower(self, cpu_model):
        seq = cpu_model.access_cost(GIB, Op.WRITE)
        rand = cpu_model.access_cost(GIB, Op.WRITE, AccessPattern.RANDOM)
        assert rand.seconds > seq.seconds

    def test_counters(self, cpu_model):
        cost = cpu_model.access_cost(GIB, Op.READ)
        assert cost.counters.cpu_mem_read_bytes == GIB

    def test_zero_bytes(self, cpu_model):
        assert cpu_model.access_cost(0, Op.READ).seconds == 0.0

    def test_rejects_negative(self, cpu_model):
        with pytest.raises(ConfigurationError):
            cpu_model.access_cost(-1, Op.READ)


class TestCpuCompute:
    def test_total_rate(self, cpu_model):
        spec = cpu_model.spec
        assert cpu_model.compute_time(spec.total_ops_per_s) == pytest.approx(1.0)

    def test_core_fraction(self, cpu_model):
        assert cpu_model.compute_time(1e9, 0.5) == pytest.approx(
            2 * cpu_model.compute_time(1e9)
        )

    def test_rejects_bad_fraction(self, cpu_model):
        with pytest.raises(ConfigurationError):
            cpu_model.compute_time(1.0, core_fraction=2.0)


class TestSwwcCacheBudget:
    def test_power9_fits_large_fanout(self, cpu_model):
        # 5 MiB/core holds SWWC buffers for 2^14 partitions.
        assert cpu_model.swwc_fits_in_cache(1 << 14)

    def test_xeon_switches_to_two_passes(self, xeon):
        model = CpuModel(xeon.cpu)
        # 1.25 MiB/core does not hold 2^14 partitions' buffers.
        assert not model.swwc_fits_in_cache(1 << 14)
        assert model.swwc_fits_in_cache(1 << 13)

    def test_buffer_bytes_scale_with_fanout(self, cpu_model):
        assert cpu_model.swwc_buffer_bytes(512) == 512 * 144

    def test_max_single_pass_fanout_power_of_two(self, cpu_model):
        fanout = cpu_model.max_single_pass_fanout()
        assert fanout & (fanout - 1) == 0
        assert cpu_model.swwc_fits_in_cache(fanout)
        assert not cpu_model.swwc_fits_in_cache(fanout * 2)

    def test_rejects_bad_fanout(self, cpu_model):
        with pytest.raises(ConfigurationError):
            cpu_model.swwc_buffer_bytes(0)


class TestPowerModel:
    def test_cpu_join_power_is_load_delta(self, system):
        model = PowerModel(system)
        assert model.cpu_join_power() == pytest.approx(
            system.cpu_load_watts - 60.0
        )

    def test_gpu_join_charged_system_idle(self, system):
        model = PowerModel(system)
        expected = (
            system.idle_watts
            - 2 * system.gpu_idle_watts
            + system.gpu_load_watts
            + system.io_watts
        )
        assert model.gpu_join_power() == pytest.approx(expected)

    def test_gpu_join_draws_more_than_cpu_join(self, system):
        # This asymmetry is why the CPU wins Fig. 23 despite being slower.
        model = PowerModel(system)
        assert model.gpu_join_power() > 2 * model.cpu_join_power()

    def test_reading_energy(self):
        reading = PowerReading(watts=100.0, seconds=2.0)
        assert reading.joules == 200.0
        assert reading.tuples_per_joule(400.0) == pytest.approx(2.0)

    def test_efficiency_metric(self, system):
        model = PowerModel(system)
        eff = model.efficiency(1e9, 1.0, uses_gpu=False)
        assert eff == pytest.approx(1000.0 / model.cpu_join_power())

    def test_rejects_nonpositive_runtime(self, system):
        with pytest.raises(ConfigurationError):
            PowerModel(system).reading(0.0, uses_gpu=True)
