"""Unit tests for the group-by aggregation extension (repro.aggregate)."""

import numpy as np
import pytest

from repro.aggregate import (
    AggregateFunction,
    NoPartitioningAggregation,
    TritonAggregation,
    reference_aggregate,
)
from repro.data.relation import Relation
from repro.errors import ConfigurationError
from repro.join.caching import CachePolicy


def make_relation(rows=20_000, groups=500, seed=0, nominal=None):
    rng = np.random.default_rng(seed)
    keys = rng.integers(1, groups + 1, size=rows).astype(np.int64)
    values = rng.integers(-1000, 1000, size=rows).astype(np.int64)
    return Relation(keys, {"attr0": values}, nominal_rows=nominal, name="F")


class TestReferenceAggregate:
    def test_sum(self):
        relation = Relation(
            np.array([1, 2, 1], dtype=np.int64),
            {"attr0": np.array([10, 20, 5], dtype=np.int64)},
        )
        result = reference_aggregate(relation, AggregateFunction.SUM)
        assert result.groups == 2

    def test_count_ignores_values(self):
        relation = make_relation(1000, 10)
        result = reference_aggregate(relation, AggregateFunction.COUNT)
        assert result.groups == 10

    @pytest.mark.parametrize("fn", list(AggregateFunction))
    def test_deterministic(self, fn):
        relation = make_relation()
        assert reference_aggregate(relation, fn) == reference_aggregate(
            relation, fn
        )


class TestCorrectness:
    @pytest.mark.parametrize("fn", list(AggregateFunction))
    def test_triton_matches_reference(self, system, fn):
        relation = make_relation(seed=int(ord(fn.value[0])))
        expected = reference_aggregate(relation, fn)
        run = TritonAggregation(system, fn).run(relation, groups_nominal=500)
        assert run.result == expected

    @pytest.mark.parametrize("fn", list(AggregateFunction))
    def test_np_matches_reference(self, system, fn):
        relation = make_relation(seed=7)
        expected = reference_aggregate(relation, fn)
        run = NoPartitioningAggregation(system, fn).run(
            relation, groups_nominal=500
        )
        assert run.result == expected

    def test_single_group(self, system):
        relation = Relation(
            np.ones(100, dtype=np.int64),
            {"attr0": np.arange(100, dtype=np.int64)},
        )
        run = TritonAggregation(system).run(relation, groups_nominal=1)
        assert run.result.groups == 1

    def test_all_distinct_groups(self, system):
        keys = np.arange(1, 5001, dtype=np.int64)
        relation = Relation(keys, {"attr0": keys})
        run = TritonAggregation(system).run(relation, groups_nominal=5000)
        assert run.result.groups == 5000


class TestCostBehaviour:
    def test_np_cliff_when_groups_outgrow_gpu(self, system):
        relation = make_relation(nominal=2_048_000_000)
        op = NoPartitioningAggregation(system)
        few_groups = op.run(relation, groups_nominal=10_000_000)
        many_groups = op.run(relation, groups_nominal=4_000_000_000)
        assert many_groups.seconds > 3 * few_groups.seconds

    def test_triton_insensitive_to_group_count(self, system):
        # The group count only adds result-emission volume; no cliff.
        relation = make_relation(nominal=2_048_000_000)
        op = TritonAggregation(system)
        few = op.run(relation, groups_nominal=10_000_000)
        many = op.run(relation, groups_nominal=2_000_000_000)
        assert many.seconds < 2.0 * few.seconds

    def test_triton_wins_out_of_core(self, system):
        # The headline claim transfers from joins to aggregation.
        relation = make_relation(nominal=2_048_000_000)
        groups = 4_000_000_000
        triton = TritonAggregation(system).run(relation, groups)
        baseline = NoPartitioningAggregation(system).run(relation, groups)
        assert triton.seconds < baseline.seconds

    def test_np_competitive_with_few_groups(self, system):
        # With an in-GPU table the baseline is close to (or better than)
        # the partitioned strategy — there is nothing to spill.
        relation = make_relation(nominal=512_000_000)
        groups = 1_000_000
        triton = TritonAggregation(system).run(relation, groups)
        baseline = NoPartitioningAggregation(system).run(relation, groups)
        assert baseline.seconds < 1.5 * triton.seconds

    def test_cache_policy_matters(self, system):
        relation = make_relation(nominal=2_048_000_000)
        cached = TritonAggregation(system).run(relation, 2_000_000_000)
        uncached = TritonAggregation(
            system, cache_policy=CachePolicy.NONE
        ).run(relation, 2_000_000_000)
        assert cached.seconds < uncached.seconds

    def test_throughput_metric(self, system):
        relation = make_relation(nominal=512_000_000)
        run = TritonAggregation(system).run(relation, 100_000_000)
        assert run.throughput_g_tuples_per_s > 0

    def test_rejects_bad_group_count(self, system):
        with pytest.raises(ConfigurationError):
            TritonAggregation(system).run(make_relation(), 0)
