"""Property-based tests: fault-injection invariants.

Three properties the fault subsystem must hold for *any* plan:

- determinism: the same seed and plan reproduce a byte-identical
  :class:`SimResult` and identical telemetry fault counters;
- bounded retries: no task exceeds ``max_attempts`` and no class
  exceeds its retry budget;
- soundness at the operator level: any plan either completes the join
  with the correct (reference) result or raises a typed
  :class:`ReproError` — never silent corruption, never a foreign
  exception.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults, telemetry
from repro.errors import ReproError, TaskFailedError
from repro.faults import BandwidthFault, FaultPlan, RetryPolicy, TaskFault
from repro.sim.engine import SimEngine
from repro.sim.resources import Resource, ResourcePool
from repro.sim.tasks import Task, TaskGraph

RESOURCES = ("link", "mem", "sm")


def pool_():
    return ResourcePool({r: Resource(r, 100.0) for r in RESOURCES})


@st.composite
def task_graphs(draw):
    """Random DAGs of 1-6 tasks with forward-only dependencies."""
    n = draw(st.integers(min_value=1, max_value=6))
    tasks = []
    for i in range(n):
        demands = {}
        for resource in RESOURCES:
            if draw(st.booleans()):
                demands[resource] = draw(
                    st.floats(min_value=1.0, max_value=200.0)
                )
        if not demands:
            demands["link"] = 10.0
        task = Task(name=f"t{i}", phase=f"phase{i % 2}", demands=demands)
        for j in range(i):
            if draw(st.booleans()) and draw(st.booleans()):
                task.after.append(tasks[j])
        tasks.append(task)
    return TaskGraph(tasks)


@st.composite
def fault_plans(draw):
    """Random fault plans over the t*/phase* task-graph namespace."""
    bandwidth = []
    for resource in draw(
        st.lists(st.sampled_from(RESOURCES), max_size=2, unique=True)
    ):
        start = draw(st.floats(min_value=0.0, max_value=2.0))
        bandwidth.append(
            BandwidthFault(
                resource,
                draw(st.floats(min_value=0.1, max_value=1.0)),
                start_s=start,
                end_s=start + draw(st.floats(min_value=0.1, max_value=3.0)),
            )
        )
    tasks = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        tasks.append(
            TaskFault(
                match=draw(st.sampled_from(("t*", "t0", "t1", "*"))),
                probability=draw(st.floats(min_value=0.05, max_value=1.0)),
                transient=draw(st.booleans()),
                max_failures=draw(
                    st.one_of(st.none(), st.integers(1, 3))
                ),
            )
        )
    retry = RetryPolicy(
        max_attempts=draw(st.integers(min_value=1, max_value=5)),
        backoff_s=draw(st.floats(min_value=1e-5, max_value=1e-2)),
        default_class_budget=draw(st.one_of(st.none(), st.integers(0, 6))),
    )
    return FaultPlan(
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        bandwidth=tuple(bandwidth),
        tasks=tuple(tasks),
        retry=retry,
    )


def run_with(plan, graph):
    """Run and return (result, error); exactly one is non-None."""
    with faults.injected(plan):
        try:
            return SimEngine(pool_()).run(graph), None
        except ReproError as error:
            return None, error


def fault_counter_delta(before):
    return {
        name: value
        for name, value in telemetry.registry.delta_since(before)[
            "counters"
        ].items()
        if name.startswith("faults.")
    }


@given(fault_plans(), task_graphs())
@settings(max_examples=60, deadline=None)
def test_same_seed_same_plan_is_byte_identical(plan, graph):
    before_first = telemetry.registry.snapshot()
    first, first_error = run_with(plan, graph)
    first_counters = fault_counter_delta(before_first)

    before_second = telemetry.registry.snapshot()
    second, second_error = run_with(plan, graph)
    second_counters = fault_counter_delta(before_second)

    assert first_counters == second_counters
    if first is None:
        assert type(first_error) is type(second_error)
        assert str(first_error) == str(second_error)
        return
    assert second is not None
    assert first.makespan_seconds == second.makespan_seconds  # exact
    assert first.trace == second.trace
    assert first.fault_events == second.fault_events
    assert first.resource_busy_units == second.resource_busy_units


@given(fault_plans(), task_graphs())
@settings(max_examples=60, deadline=None)
def test_round_tripped_plan_behaves_identically(plan, graph):
    first, first_error = run_with(plan, graph)
    restored = FaultPlan.from_json(plan.to_json())
    assert restored == plan
    second, second_error = run_with(restored, graph)
    if first is None:
        assert str(first_error) == str(second_error)
    else:
        assert first.trace == second.trace
        assert first.fault_events == second.fault_events


@given(fault_plans(), task_graphs())
@settings(max_examples=60, deadline=None)
def test_retries_never_exceed_budget(plan, graph):
    policy = plan.retry
    before = telemetry.registry.snapshot()
    result, error = run_with(plan, graph)
    counters = fault_counter_delta(before)

    # Per-task bound: attempts <= max_attempts, so failed-attempt trace
    # entries per task <= max_attempts - 1 on success paths.
    if result is not None:
        per_task = {}
        for entry in result.trace:
            if "failed]" in entry.name:
                base = entry.name.split(" [attempt")[0]
                per_task[base] = per_task.get(base, 0) + 1
        for count in per_task.values():
            assert count <= policy.max_attempts - 1
    else:
        assert isinstance(error, TaskFailedError)
        assert error.attempts <= policy.max_attempts

    # Class-budget bound: total retries across one class never exceed
    # the budget (every class shares the same default budget here).
    if policy.default_class_budget is not None:
        # Two phase classes in the graph strategy.
        assert counters.get("faults.retries", 0) <= (
            2 * policy.default_class_budget
        )


@given(fault_plans(), task_graphs())
@settings(max_examples=40, deadline=None)
def test_any_plan_completes_or_raises_typed_error(plan, graph):
    result, error = run_with(plan, graph)
    if error is not None:
        assert isinstance(error, ReproError)
        return
    # Completion is genuine: all demand units were delivered (each
    # failed attempt re-delivers, so busy units >= clean totals).
    for resource in RESOURCES:
        total = sum(t.demands.get(resource, 0.0) for t in graph.tasks)
        assert result.resource_busy_units[resource] >= total - 1e-6
    for task in graph.tasks:
        assert task.end_time is not None
        assert task.remaining_fraction == 0.0


@given(plan=fault_plans())
@settings(max_examples=25, deadline=None)
def test_operator_under_any_plan_is_correct_or_typed(plan, small_workload):
    """End-to-end soundness: the Triton join under an arbitrary plan
    either matches the fault-free reference result or raises a
    ReproError subclass."""
    from repro.hw.specs import ac922
    from repro.join import TritonJoin, reference_join

    expected = reference_join(small_workload.build, small_workload.probe)
    op = TritonJoin(ac922())
    with faults.injected(plan):
        try:
            run = op.run(small_workload)
        except ReproError:
            return
    assert run.match == expected
