"""Smoke tests: every example script runs end to end.

Examples are loaded by file path (they are scripts, not package
modules) and executed with reduced parameters where they accept any.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart",
        "out_of_core_scaling",
        "partitioning_deep_dive",
        "cache_tuning",
        "future_hardware",
        "group_by_aggregation",
        "analytics_query",
    } <= names


def test_quickstart_runs(capsys):
    load_example("quickstart").main(64.0)
    out = capsys.readouterr().out
    assert "verified" in out
    assert "G tuples/s" in out


def test_out_of_core_scaling_runs(capsys, monkeypatch):
    module = load_example("out_of_core_scaling")
    monkeypatch.setattr(module, "SIZES", (128, 2048))
    monkeypatch.setattr(module, "DIVISOR", 65536)
    module.main()
    out = capsys.readouterr().out
    assert "Triton" in out
    assert "cliff" in out.lower()


def test_partitioning_deep_dive_runs(capsys, monkeypatch):
    module = load_example("partitioning_deep_dive")
    monkeypatch.setattr(module, "FANOUTS", (64, 2048))
    module.main()
    out = capsys.readouterr().out
    assert "Hierarchical" in out
    assert "Standard" in out


def test_cache_tuning_runs(capsys, monkeypatch):
    module = load_example("cache_tuning")
    monkeypatch.setattr(module, "CACHE_POINTS_GIB", (0.0, 14.9))
    module.main(512.0)
    out = capsys.readouterr().out
    assert "Best cache size" in out
    assert "even interleaving" in out


def test_future_hardware_runs(capsys, monkeypatch):
    module = load_example("future_hardware")
    monkeypatch.setattr(module, "DIVISOR", 65536)
    module.main()
    out = capsys.readouterr().out
    assert "Baseline AC922" in out
    assert "speedup" in out


def test_group_by_aggregation_runs(capsys, monkeypatch):
    module = load_example("group_by_aggregation")
    monkeypatch.setattr(module, "GROUP_COUNTS", (1e6, 4e9))
    module.main()
    out = capsys.readouterr().out
    assert "Triton" in out
    assert "global" in out


def test_analytics_query_runs(capsys, monkeypatch):
    module = load_example("analytics_query")
    monkeypatch.setattr(module, "FACT_M_TUPLES", 512)
    module.main()
    out = capsys.readouterr().out
    assert "filtered join" in out
    assert "query total" in out


def test_future_hardware_claims_hold(capsys, monkeypatch):
    """The example's narrative is backed by its own numbers."""
    module = load_example("future_hardware")
    monkeypatch.setattr(module, "DIVISOR", 65536)
    module.main()
    out = capsys.readouterr().out
    lines = {
        line.split()[-1]
        for line in out.splitlines()
        if line.strip().endswith("x")
    }
    speedups = sorted(float(s.rstrip("x")) for s in lines)
    # Compute scaling is ~1.0x; the link is the lever.
    assert speedups[0] <= 1.05
    assert speedups[-1] > 1.2
